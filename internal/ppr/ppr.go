// Package ppr implements the personalized-PageRank machinery of Section 3.1:
// the iterative solver for Eq. (4),
//
//	p = 1/(1+alpha) * S' p + alpha/(1+alpha) * q,
//
// whose fixed point is the closed form of Lemma 1, a sparse localized solver
// used to precompute the per-task basis vectors p_{t_i}, and the linearity
// combination of Lemma 3 that makes online estimation O(|completed|·nnz).
package ppr

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icrowd/internal/obsv"
	"icrowd/internal/simgraph"
)

// Solver-pool instruments on the process default registry: Precompute and
// PrecomputePartial are offline batch work, so the per-process view is the
// useful one and no registry needs threading through the API.
var (
	mSeedsSolved = obsv.Default().Counter("icrowd_ppr_seeds_solved_total",
		"PPR basis vectors solved (Precompute and PrecomputePartial).")
	mPoolWorkers = obsv.Default().Gauge("icrowd_ppr_pool_workers",
		"Solver-pool fan-out of the last basis precomputation.")
	mSolveLat = obsv.Default().Histogram("icrowd_ppr_solve_batch_seconds",
		"Wall time of whole basis solve batches.", nil)
)

// Options tunes the solvers.
type Options struct {
	// Alpha is the balance parameter of Eq. (2); must be > 0.
	Alpha float64
	// Tol is the L1 convergence tolerance of the iterative solvers.
	Tol float64
	// MaxIter caps the number of iterations.
	MaxIter int
	// DropTol truncates sparse-solver entries below this magnitude to keep
	// the basis vectors local; 0 keeps everything the iteration touched.
	DropTol float64
	// Workers bounds the seed-solve fan-out of Precompute and
	// PrecomputePartial: 0 uses GOMAXPROCS, 1 forces the sequential path.
	// Every seed is solved independently and merged at its own index, so the
	// result is bit-identical for any worker count.
	Workers int
}

// DefaultOptions returns the solver configuration used across experiments:
// the paper's default alpha = 1.0 (Appendix D.2) with tight tolerances.
func DefaultOptions() Options {
	return Options{Alpha: 1.0, Tol: 1e-9, MaxIter: 200, DropTol: 1e-7}
}

func (o Options) validate() error {
	if o.Alpha <= 0 {
		return errors.New("ppr: alpha must be positive")
	}
	if o.MaxIter < 1 {
		return errors.New("ppr: MaxIter must be >= 1")
	}
	if o.Tol < 0 || o.DropTol < 0 {
		return errors.New("ppr: negative tolerance")
	}
	if o.Workers < 0 {
		return errors.New("ppr: Workers must be >= 0")
	}
	return nil
}

// workerCount resolves Options.Workers against the job size.
func (o Options) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DenseSolve iterates Eq. (4) to convergence for an arbitrary observed
// vector q (length g.N()) and returns the estimated accuracy vector p.
func DenseSolve(g *simgraph.Graph, q []float64, o Options) ([]float64, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if len(q) != g.N() {
		return nil, errors.New("ppr: q length mismatch")
	}
	c := 1 / (1 + o.Alpha)
	restart := o.Alpha / (1 + o.Alpha)
	p := make([]float64, g.N())
	copy(p, q) // paper: "we set vector p as the observed one q initially"
	next := make([]float64, g.N())
	for iter := 0; iter < o.MaxIter; iter++ {
		var delta float64
		for i := 0; i < g.N(); i++ {
			var acc float64
			g.Neighbors(i, func(j int, _, norm float64) {
				acc += norm * p[j]
			})
			v := c*acc + restart*q[i]
			d := v - p[i]
			if d < 0 {
				d = -d
			}
			delta += d
			next[i] = v
		}
		p, next = next, p
		if delta <= o.Tol {
			break
		}
	}
	return p, nil
}

// SparseSolve computes the basis vector p_{t_seed}: the fixed point of
// Eq. (4) when q = e_seed. It expands the truncated Neumann series
// restart * sum_k (c S')^k e_seed with a sparse frontier, so the cost is
// proportional to the seed's graph neighborhood rather than to N.
//
// Frontier nodes are expanded in ascending ID order, fixing the
// floating-point accumulation order: the result is bit-identical across
// runs, which is what lets the parallel Precompute stay byte-identical to
// the sequential path.
func SparseSolve(g *simgraph.Graph, seed int, o Options) (map[int]float64, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if seed < 0 || seed >= g.N() {
		return nil, errors.New("ppr: seed out of range")
	}
	c := 1 / (1 + o.Alpha)
	restart := o.Alpha / (1 + o.Alpha)

	p := map[int]float64{seed: restart}
	frontier := map[int]float64{seed: restart}
	var order []int
	for iter := 0; iter < o.MaxIter && len(frontier) > 0; iter++ {
		next := make(map[int]float64, len(frontier)*2)
		order = order[:0]
		for i := range frontier {
			order = append(order, i)
		}
		sort.Ints(order)
		for _, i := range order {
			x := frontier[i]
			g.Neighbors(i, func(j int, _, norm float64) {
				next[j] += c * norm * x
			})
		}
		order = order[:0]
		for j := range next {
			order = append(order, j)
		}
		sort.Ints(order)
		var mass float64
		for _, j := range order {
			x := next[j]
			if x < o.DropTol && -x < o.DropTol {
				delete(next, j)
				continue
			}
			p[j] += x
			if x < 0 {
				mass -= x
			} else {
				mass += x
			}
		}
		if mass <= o.Tol {
			break
		}
		frontier = next
	}
	return p, nil
}

// Basis holds the precomputed vectors p_{t_i} for every task (the offline
// phase of Algorithm 1).
type Basis struct {
	opts Options
	vecs []map[int]float64
}

// Precompute runs SparseSolve for every task across a bounded worker pool
// (offline step of Algorithm 1 / Algorithm 4 line 2-3). Options.Workers
// sizes the pool; the output is bit-identical for any pool size.
func Precompute(g *simgraph.Graph, o Options) (*Basis, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	b := &Basis{opts: o, vecs: make([]map[int]float64, g.N())}
	seeds := make([]int, g.N())
	for i := range seeds {
		seeds[i] = i
	}
	if err := solveSeeds(g, o, seeds, b.vecs); err != nil {
		return nil, err
	}
	return b, nil
}

// PrecomputePartial computes basis vectors only for the given seed tasks
// (others stay nil). The Figure-10 scalability experiment uses it: online
// estimation and assignment only ever read the vectors of *observed* tasks,
// so precomputing all N vectors of a million-task graph is unnecessary.
// Like Precompute it fans out across Options.Workers solvers with
// deterministic merge order.
func PrecomputePartial(g *simgraph.Graph, o Options, seeds []int) (*Basis, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	b := &Basis{opts: o, vecs: make([]map[int]float64, g.N())}
	// Deduplicate up front so no two pool workers ever write the same index.
	uniq := make([]int, 0, len(seeds))
	seen := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= g.N() {
			return nil, errors.New("ppr: seed out of range")
		}
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	if err := solveSeeds(g, o, uniq, b.vecs); err != nil {
		return nil, err
	}
	return b, nil
}

// solveChunk is how many seeds a pool worker claims at a time: large enough
// to amortize the atomic fetch, small enough to keep the pool balanced.
const solveChunk = 16

// solveSeeds solves every seed in the list (assumed valid and distinct) and
// stores vecs[seed]. With one worker it runs inline; otherwise a bounded
// pool claims contiguous chunks off an atomic cursor. Each result lands at
// its own index and errors are reported for the lowest failing seed
// position, so the outcome is independent of goroutine scheduling.
func solveSeeds(g *simgraph.Graph, o Options, seeds []int, vecs []map[int]float64) error {
	workers := o.workerCount(len(seeds))
	mPoolWorkers.Set(float64(workers))
	defer func(start time.Time) {
		mSolveLat.Observe(time.Since(start))
		mSeedsSolved.Add(int64(len(seeds)))
	}(time.Now())
	if workers == 1 {
		for _, s := range seeds {
			v, err := SparseSolve(g, s, o)
			if err != nil {
				return err
			}
			vecs[s] = v
		}
		return nil
	}
	errs := make([]error, len(seeds))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(solveChunk)) - solveChunk
				if start >= len(seeds) {
					return
				}
				end := start + solveChunk
				if end > len(seeds) {
					end = len(seeds)
				}
				for k := start; k < end; k++ {
					v, err := SparseSolve(g, seeds[k], o)
					if err != nil {
						errs[k] = err
						continue
					}
					vecs[seeds[k]] = v
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// N returns the number of tasks the basis covers.
func (b *Basis) N() int { return len(b.vecs) }

// Options returns the solver options the basis was built with.
func (b *Basis) Options() Options { return b.opts }

// Vec returns the basis vector p_{t_i} as a sparse map. Callers must not
// mutate it.
func (b *Basis) Vec(i int) map[int]float64 { return b.vecs[i] }

// NNZ returns the number of stored nonzeros across all basis vectors.
func (b *Basis) NNZ() int {
	var n int
	for _, v := range b.vecs {
		n += len(v)
	}
	return n
}

// Combine applies Lemma 3: given sparse observed accuracies q (task -> q_i),
// it returns p* = sum_i q_i * p_{t_i} as a sparse map.
func (b *Basis) Combine(q map[int]float64) map[int]float64 {
	out := make(map[int]float64, 4*len(q))
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		for j, pj := range b.vecs[i] {
			out[j] += qi * pj
		}
	}
	return out
}

// CombineInto is Combine writing into a caller-provided map (cleared first),
// avoiding per-call allocation on the assignment hot path.
func (b *Basis) CombineInto(q map[int]float64, out map[int]float64) {
	for k := range out {
		delete(out, k)
	}
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		for j, pj := range b.vecs[i] {
			out[j] += qi * pj
		}
	}
}

// Support returns the sorted task IDs reachable (nonzero) from seed i's
// basis vector. Used by the qualification influence function (Section 5).
func (b *Basis) Support(i int) []int {
	out := make([]int, 0, len(b.vecs[i]))
	for j := range b.vecs[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}
