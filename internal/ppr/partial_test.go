package ppr

import (
	"math"
	"testing"

	"icrowd/internal/simgraph"
)

func TestPrecomputePartial(t *testing.T) {
	g := table1Graph(t)
	o := DefaultOptions()
	seeds := []int{0, 5, 5, 11} // duplicates must be tolerated
	partial, err := PrecomputePartial(g, o, seeds)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Precompute(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{0, 5, 11} {
		pv, fv := partial.Vec(s), full.Vec(s)
		if len(pv) != len(fv) {
			t.Fatalf("seed %d: nnz %d vs %d", s, len(pv), len(fv))
		}
		for j, x := range fv {
			if math.Abs(pv[j]-x) > 1e-12 {
				t.Fatalf("seed %d entry %d differs", s, j)
			}
		}
	}
	// Non-seed vectors stay nil.
	if partial.Vec(3) != nil {
		t.Fatal("non-seed vector should be nil")
	}
	// Combine over the seeded entries still works.
	got := partial.Combine(map[int]float64{0: 1, 5: 0.5})
	want := full.Combine(map[int]float64{0: 1, 5: 0.5})
	for j, x := range want {
		if math.Abs(got[j]-x) > 1e-12 {
			t.Fatalf("combine entry %d differs", j)
		}
	}
	// Options validation still applies.
	bad := o
	bad.Alpha = 0
	if _, err := PrecomputePartial(g, bad, seeds); err == nil {
		t.Fatal("bad options should error")
	}
	if _, err := PrecomputePartial(g, o, []int{-1}); err == nil {
		t.Fatal("out-of-range seed should error")
	}
}

func TestPrecomputePartialOnLargeRandomGraph(t *testing.T) {
	g, err := simgraph.BuildRandom(5000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.DropTol = 1e-4
	b, err := PrecomputePartial(g, o, []int{0, 100, 4999})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{0, 100, 4999} {
		v := b.Vec(s)
		if v == nil || v[s] < 0.49 {
			t.Fatalf("seed %d basis missing or malformed", s)
		}
	}
}
