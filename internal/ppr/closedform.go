package ppr

import (
	"errors"

	"icrowd/internal/matrix"
	"icrowd/internal/simgraph"
)

// ClosedForm evaluates Lemma 1 directly:
//
//	p* = alpha/(1+alpha) * (I - S'/(1+alpha))^{-1} q
//
// by dense matrix inversion. It is O(N^3) and intended for verifying the
// iterative solvers on small graphs, mirroring how the paper derives the
// iterative algorithm from the analytic solution.
func ClosedForm(g *simgraph.Graph, q []float64, alpha float64) ([]float64, error) {
	if alpha <= 0 {
		return nil, errors.New("ppr: alpha must be positive")
	}
	n := g.N()
	if len(q) != n {
		return nil, errors.New("ppr: q length mismatch")
	}
	c := 1 / (1 + alpha)
	m := matrix.Identity(n)
	for i := 0; i < n; i++ {
		g.Neighbors(i, func(j int, _, norm float64) {
			m.Set(i, j, m.At(i, j)-c*norm)
		})
	}
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	p, err := inv.MulVec(q)
	if err != nil {
		return nil, err
	}
	restart := alpha / (1 + alpha)
	for i := range p {
		p[i] *= restart
	}
	return p, nil
}
