package ppr

import (
	"math"
	"testing"

	"icrowd/internal/simgraph"
	"icrowd/internal/task"
)

// table1Graph builds the Figure-3 similarity graph: Jaccard >= 0.5 over the
// Table-1 microtasks.
func table1Graph(t testing.TB) *simgraph.Graph {
	t.Helper()
	ds := task.ProductMatching()
	g, err := simgraph.Build(ds.Len(), simgraph.JaccardMetric(ds), 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptionsValidation(t *testing.T) {
	g := table1Graph(t)
	q := make([]float64, g.N())
	bad := []Options{
		{Alpha: 0, Tol: 1e-9, MaxIter: 10},
		{Alpha: -1, Tol: 1e-9, MaxIter: 10},
		{Alpha: 1, Tol: 1e-9, MaxIter: 0},
		{Alpha: 1, Tol: -1, MaxIter: 10},
		{Alpha: 1, Tol: 1e-9, MaxIter: 10, DropTol: -1},
	}
	for i, o := range bad {
		if _, _, err := DenseSolve(g, q, o); err == nil {
			t.Fatalf("case %d: DenseSolve accepted bad options", i)
		}
		if _, _, err := SparseSolve(g, 0, o); err == nil {
			t.Fatalf("case %d: SparseSolve accepted bad options", i)
		}
	}
	if _, _, err := DenseSolve(g, q[:3], DefaultOptions()); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := SparseSolve(g, -1, DefaultOptions()); err == nil {
		t.Fatal("seed out of range should error")
	}
	if _, err := ClosedForm(g, q[:2], 1); err == nil {
		t.Fatal("ClosedForm length mismatch should error")
	}
	if _, err := ClosedForm(g, q, 0); err == nil {
		t.Fatal("ClosedForm alpha=0 should error")
	}
}

func TestDenseMatchesClosedForm(t *testing.T) {
	// Lemma 2: the Eq.-(4) iteration converges to the Lemma-1 closed form.
	g := table1Graph(t)
	q := make([]float64, g.N())
	q[0] = 1 // worker answered t1 correctly
	q[1] = 0 // t2 incorrectly
	q[2] = 0 // t3 incorrectly
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 10} {
		o := DefaultOptions()
		o.Alpha = alpha
		iter, _, err := DenseSolve(g, q, o)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ClosedForm(g, q, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for i := range iter {
			if math.Abs(iter[i]-exact[i]) > 1e-6 {
				t.Fatalf("alpha=%v task %d: iterative %v vs closed form %v",
					alpha, i, iter[i], exact[i])
			}
		}
	}
}

func TestSparseMatchesDense(t *testing.T) {
	g := table1Graph(t)
	o := DefaultOptions()
	o.DropTol = 0 // exact comparison
	for seed := 0; seed < g.N(); seed++ {
		sp, _, err := SparseSolve(g, seed, o)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, g.N())
		q[seed] = 1
		dn, _, err := DenseSolve(g, q, o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			if math.Abs(sp[i]-dn[i]) > 1e-6 {
				t.Fatalf("seed %d task %d: sparse %v vs dense %v", seed, i, sp[i], dn[i])
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	// Lemma 3: p*(q) = sum_i q_i p_{t_i}.
	g := table1Graph(t)
	o := DefaultOptions()
	o.DropTol = 0
	basis, err := Precompute(g, o)
	if err != nil {
		t.Fatal(err)
	}
	q := map[int]float64{0: 1, 3: 0.8, 5: 0.3}
	combined := basis.Combine(q)
	qd := make([]float64, g.N())
	for i, v := range q {
		qd[i] = v
	}
	dense, _, err := DenseSolve(g, qd, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		if math.Abs(combined[i]-dense[i]) > 1e-6 {
			t.Fatalf("task %d: combined %v vs dense %v", i, combined[i], dense[i])
		}
	}
}

func TestCombineInto(t *testing.T) {
	g := table1Graph(t)
	basis, err := Precompute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := map[int]float64{0: 1, 1: 0.5}
	want := basis.Combine(q)
	out := map[int]float64{99: 42} // stale content must be cleared
	basis.CombineInto(q, out)
	if _, ok := out[99]; ok {
		t.Fatal("CombineInto did not clear stale entries")
	}
	if len(out) != len(want) {
		t.Fatalf("CombineInto size %d, want %d", len(out), len(want))
	}
	for k, v := range want {
		if math.Abs(out[k]-v) > 1e-12 {
			t.Fatalf("CombineInto[%d] = %v, want %v", k, out[k], v)
		}
	}
	// Zero weights are skipped entirely.
	basis.CombineInto(map[int]float64{0: 0}, out)
	if len(out) != 0 {
		t.Fatal("zero-weight combine should be empty")
	}
}

func TestEstimatesRespectClusters(t *testing.T) {
	// The paper's running example: a worker answers t1 (iPhone) correctly
	// and t2 (iPod), t3 (iPad) incorrectly. Estimated accuracies should be
	// higher on the other iPhone tasks than on iPod/iPad tasks.
	ds := task.ProductMatching()
	g := table1Graph(t)
	q := make([]float64, g.N())
	q[0] = 1
	p, _, err := DenseSolve(g, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var iphone, other []float64
	for i := 3; i < ds.Len(); i++ {
		if ds.Tasks[i].Domain == "iPhone" {
			iphone = append(iphone, p[i])
		} else {
			other = append(other, p[i])
		}
	}
	meanA, meanB := mean(iphone), mean(other)
	if meanA <= meanB {
		t.Fatalf("iPhone estimates %v not above others %v", meanA, meanB)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestBasisProperties(t *testing.T) {
	g := table1Graph(t)
	basis, err := Precompute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if basis.N() != g.N() {
		t.Fatalf("basis covers %d tasks, want %d", basis.N(), g.N())
	}
	if basis.NNZ() == 0 {
		t.Fatal("basis has no nonzeros")
	}
	for i := 0; i < g.N(); i++ {
		v := basis.Vec(i)
		// Seed mass: p_{t_i}(i) >= restart = alpha/(1+alpha).
		if v[i] < 0.5-1e-9 {
			t.Fatalf("seed %d self-mass %v < 0.5", i, v[i])
		}
		for j, x := range v {
			if x < 0 || x > 1+1e-9 {
				t.Fatalf("basis[%d][%d] = %v out of [0,1]", i, j, x)
			}
		}
		sup := basis.Support(i)
		if len(sup) != len(v) {
			t.Fatalf("support size mismatch at %d", i)
		}
		for k := 1; k < len(sup); k++ {
			if sup[k-1] >= sup[k] {
				t.Fatal("support not sorted")
			}
		}
	}
}

func TestSupportStaysWithinComponent(t *testing.T) {
	// Basis vectors must not leak across connected components: influence in
	// the paper's Section 5 is exactly this support.
	g := table1Graph(t)
	comp := map[int]int{}
	for ci, c := range g.Components() {
		for _, v := range c {
			comp[v] = ci
		}
	}
	basis, err := Precompute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		for _, j := range basis.Support(i) {
			if comp[i] != comp[j] {
				t.Fatalf("support of %d leaks into foreign component via %d", i, j)
			}
		}
	}
}

func TestDropTolSparsifies(t *testing.T) {
	ds := task.GenerateItemCompare(1)
	g, err := simgraph.Build(ds.Len(), simgraph.JaccardMetric(ds), 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := DefaultOptions()
	exact.DropTol = 0
	loose := DefaultOptions()
	loose.DropTol = 1e-3
	be, err := Precompute(g, exact)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := Precompute(g, loose)
	if err != nil {
		t.Fatal(err)
	}
	if bl.NNZ() >= be.NNZ() {
		t.Fatalf("DropTol did not sparsify: %d vs %d", bl.NNZ(), be.NNZ())
	}
	// Loose vectors still approximate the exact ones.
	for i := 0; i < g.N(); i += 17 {
		ve, vl := be.Vec(i), bl.Vec(i)
		for j, x := range ve {
			if math.Abs(x-vl[j]) > 5e-3 {
				t.Fatalf("seed %d entry %d: %v vs %v", i, j, x, vl[j])
			}
		}
	}
}

func TestAlphaExtremes(t *testing.T) {
	// Large alpha pins p to q; small alpha diffuses mass to neighbors
	// (Appendix D.2 discussion).
	g := table1Graph(t)
	q := make([]float64, g.N())
	q[0] = 1
	big := DefaultOptions()
	big.Alpha = 100
	p, _, err := DenseSolve(g, q, big)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] < 0.97 {
		t.Fatalf("alpha=100 should pin p[0] near 1, got %v", p[0])
	}
	small := DefaultOptions()
	small.Alpha = 0.05
	ps, _, err := DenseSolve(g, q, small)
	if err != nil {
		t.Fatal(err)
	}
	// With small alpha, more mass leaks to neighbors than with large alpha.
	if ps[3] <= p[3] {
		t.Fatalf("small alpha should diffuse more: %v <= %v", ps[3], p[3])
	}
}
