package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"icrowd/internal/baseline"
	"icrowd/internal/platform"
	"icrowd/internal/store"
	"icrowd/internal/task"
)

// shardProc is one icrowd-server shard the soak can kill and restart in
// place: same address (its ring identity), same event-log path.
type shardProc struct {
	idx     int
	addr    string
	url     string
	logPath string
	backend store.Backend
	server  *platform.Server
	http    *http.Server
}

// startShard opens (or reopens) the shard's event log, replays whatever
// history it holds into a fresh same-seed strategy, restores lease and
// idempotency state, and serves on addr ("" picks a free port).
func startShard(t *testing.T, idx int, addr, logPath string) *shardProc {
	t.Helper()
	b, info, err := store.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ds := task.ProductMatching()
	st, err := baseline.NewRandomMV(ds, 3, nil, int64(1000+idx))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Events) > 0 {
		if err := store.Replay(info.Events, st); err != nil {
			t.Fatal(err)
		}
	}
	so := platform.NewServer(st, ds, platform.WithBackend(b))
	if len(info.Events) > 0 {
		so.Restore(info.Events)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: so.Handler()}
	go hs.Serve(ln) //nolint:errcheck // returns on Close
	return &shardProc{
		idx:     idx,
		addr:    ln.Addr().String(),
		url:     "http://" + ln.Addr().String(),
		logPath: logPath,
		backend: b,
		server:  so,
		http:    hs,
	}
}

// kill drops the shard at the transport level (connections refused) and
// releases its log file so a restart can reopen it, simulating a crashed
// process whose durable state survives.
func (p *shardProc) kill(t *testing.T) {
	t.Helper()
	if err := p.http.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.backend.Close(); err != nil {
		t.Fatal(err)
	}
}

// round performs one assign+submit cycle for worker through the router.
// It reports whether the worker still has work, and records an acked
// submit into acked.
func round(ctx context.Context, c *platform.Client, worker string, acked map[[2]interface{}]bool) (more bool, err error) {
	res, err := c.Assign(ctx, worker)
	if err != nil {
		return true, err
	}
	if !res.Assigned {
		return false, nil
	}
	if err := c.Submit(ctx, worker, res.TaskID, task.Yes); err != nil {
		return true, err
	}
	acked[[2]interface{}{worker, res.TaskID}] = true
	return true, nil
}

// TestChaosKillShard is the fleet-level soak: three real shards behind the
// router, one killed mid-load. Survivors must keep serving their key
// ranges, the dead range must fail only with the typed shard_unavailable
// error, readiness must flip 503 and back, and the restarted shard must
// resume from its event log — no lost or duplicated submits anywhere.
func TestChaosKillShard(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped with -short")
	}
	dir := t.TempDir()
	shards := make([]*shardProc, 3)
	for i := range shards {
		shards[i] = startShard(t, i, "", filepath.Join(dir, fmt.Sprintf("shard%d.events.log", i)))
	}
	urls := make([]string, len(shards))
	for i, p := range shards {
		urls[i] = p.url
	}
	rt, err := New(Config{Shards: urls, ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	stopProbes := rt.Start()
	defer stopProbes()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	client := &platform.Client{BaseURL: front.URL} // no retries: every error surfaces
	ctx := context.Background()
	workers := keys(48)
	// Partition the crowd by ring owner so the soak can reason about who
	// the kill strands.
	byShard := map[string][]string{}
	for _, w := range workers {
		byShard[rt.ring.Get(w)] = append(byShard[rt.ring.Get(w)], w)
	}
	for _, u := range urls {
		// Majority vote needs 3 distinct voters per task, so a shard's job
		// can only finish if at least 3 workers hash to it.
		if len(byShard[u]) < 3 {
			t.Fatalf("only %d workers hash to %s; grow the crowd", len(byShard[u]), u)
		}
	}
	victim := shards[1]
	if len(byShard[victim.url]) == 0 {
		t.Fatalf("no workers hash to the victim shard; distribution: %v", byShard)
	}
	acked := map[[2]interface{}]bool{}

	// Phase A: everyone makes progress while the fleet is whole (two
	// rounds each keeps every shard's job unfinished for the later phases).
	for _, w := range workers {
		for r := 0; r < 2; r++ {
			if _, err := round(ctx, client, w, acked); err != nil {
				t.Fatalf("phase A: worker %s: %v", w, err)
			}
		}
	}

	// Snapshot the victim's externally visible state before the kill; the
	// restart must reproduce it from the log alone.
	preStatus := directStatus(t, victim.url)
	preSeq := directLastSeq(t, victim.url)
	if preSeq == 0 {
		t.Fatal("victim logged no events in phase A")
	}

	// Phase B: kill the victim mid-load.
	victim.kill(t)
	unavailable := 0
	for _, w := range byShard[victim.url] {
		for r := 0; r < 2; r++ {
			_, err := round(ctx, client, w, acked)
			if err == nil {
				t.Fatalf("phase B: worker %s succeeded against a dead shard", w)
			}
			var ae *platform.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("phase B: worker %s got untyped error: %v", w, err)
			}
			if !platform.IsShardUnavailable(err) {
				t.Fatalf("phase B: worker %s got code %q, want shard_unavailable", w, ae.Code)
			}
			if ae.RetryAfter < time.Second {
				t.Fatalf("phase B: Retry-After hint %v, want >= 1s", ae.RetryAfter)
			}
			unavailable++
		}
	}
	// Survivors keep serving their ranges through the same router.
	for _, p := range []*shardProc{shards[0], shards[2]} {
		for _, w := range byShard[p.url] {
			if _, err := round(ctx, client, w, acked); err != nil {
				t.Fatalf("phase B: survivor worker %s: %v", w, err)
			}
		}
	}
	// The fleet reports itself unready while a key range is dark.
	if status, _ := get(t, front.URL+"/v1/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead shard: HTTP %d, want 503", status)
	}
	status, body := get(t, front.URL+"/v1/healthz")
	var roll HealthRollup
	if status != http.StatusOK || json.Unmarshal(body, &roll) != nil || roll.Status != "degraded" {
		t.Fatalf("healthz with dead shard: HTTP %d %s, want 200 degraded", status, body)
	}

	// Phase C: restart the victim at the same address from the same log.
	shards[1] = startShard(t, 1, victim.addr, victim.logPath)
	deadline := time.Now().Add(5 * time.Second)
	for !rt.tracker.Up(victim.url) {
		if time.Now().After(deadline) {
			t.Fatal("router never re-admitted the restarted shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status, _ := get(t, front.URL+"/v1/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after re-admit: HTTP %d, want 200", status)
	}
	// Resume, not reset: the replayed shard serves its pre-kill state.
	postStatus := directStatus(t, victim.url)
	if postStatus.Completed != preStatus.Completed || postStatus.Pending != preStatus.Pending {
		t.Fatalf("restart lost state: pre %+v post %+v", preStatus, postStatus)
	}
	if postSeq := directLastSeq(t, victim.url); postSeq != preSeq {
		t.Fatalf("restart lost log events: lastSeq pre %d post %d", preSeq, postSeq)
	}

	// Drive the whole crowd to completion through the router.
	for _, w := range workers {
		for r := 0; r < 40; r++ {
			more, err := round(ctx, client, w, acked)
			if err != nil {
				t.Fatalf("phase C: worker %s: %v", w, err)
			}
			if !more {
				break
			}
		}
	}
	var st platform.StatusResponse
	status, body = get(t, front.URL+"/v1/status")
	if status != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("status: HTTP %d %s", status, body)
	}
	if !st.Done || st.Completed != task.ProductMatching().Len() {
		t.Fatalf("fleet did not finish the job: %+v", st)
	}

	// Tear down and audit the logs.
	stopProbes()
	front.Close()
	for _, p := range shards {
		p.kill(t)
	}
	type wt struct {
		worker string
		task   int
	}
	submits := map[wt]int{}
	for i, p := range shards {
		_, info, err := store.Open(p.logPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range info.Events {
			// Ownership: a shard's log only ever holds its own workers'
			// events — the router never mis-routes, and a worker's history
			// never splits across logs.
			if owner := rt.ring.Get(ev.Worker); owner != urls[i] {
				t.Fatalf("shard %d logged event for worker %s owned by %s", i, ev.Worker, owner)
			}
			if ev.Kind == store.EventSubmit {
				submits[wt{ev.Worker, ev.Task}]++
			}
		}
	}
	// No duplicated submits anywhere in the fleet, despite the kill window
	// and the resubmits it caused.
	for k, n := range submits {
		if n > 1 {
			t.Fatalf("submit (%s, %d) logged %d times", k.worker, k.task, n)
		}
	}
	// No lost submits: everything a client saw acked is durable in some log.
	for k := range acked {
		if submits[wt{k[0].(string), k[1].(int)}] == 0 {
			t.Fatalf("acked submit (%v, %v) missing from every shard log", k[0], k[1])
		}
	}
	if unavailable == 0 {
		t.Fatal("the kill window surfaced no shard_unavailable errors; the soak proved nothing")
	}
	t.Logf("soak: %d acked submits, %d durable submit events, %d shard_unavailable during outage",
		len(acked), len(submits), unavailable)
}

// directStatus reads one shard's /v1/status bypassing the router.
func directStatus(t *testing.T, url string) platform.StatusResponse {
	t.Helper()
	status, body := get(t, url+"/v1/status")
	if status != http.StatusOK {
		t.Fatalf("direct status: HTTP %d", status)
	}
	var st platform.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// directLastSeq reads one shard's default-project LastSeq bypassing the
// router.
func directLastSeq(t *testing.T, url string) int64 {
	t.Helper()
	status, body := get(t, url+"/v1/projects")
	if status != http.StatusOK {
		t.Fatalf("direct projects: HTTP %d", status)
	}
	var list platform.ProjectListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	for _, p := range list.Projects {
		if p.ID == "default" {
			return p.LastSeq
		}
	}
	t.Fatal("default project missing from direct listing")
	return 0
}
