// Package shard implements the horizontal sharding layer that lifts the
// platform past the single-node ceiling: a consistent-hash ring keyed on
// worker ID, a health tracker that detects down shards and re-admits them
// after restart, and an HTTP router that fronts N independent
// icrowd-server instances — proxying the write path (/assign, /submit,
// /inactive) to the owning shard and fanning the read path out across all
// of them (status/results merge, healthz/readyz rollup, Prometheus
// aggregation).
//
// The partitioning unit is the worker: every request a worker issues lands
// on the same shard, so that shard's lease, idempotency and event-log
// machinery see the worker's full history and the existing crash-recovery
// guarantees hold per shard with no cross-shard coordination. A down shard
// takes only its own key range out of service — the router answers for it
// with a typed 503 shard_unavailable and Retry-After while the survivors
// keep serving theirs — and a restarted shard replays its own event log
// and rejoins the ring with its state intact.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultReplicas is the virtual-node count per shard. 128 points per
// shard keeps the worst-case key imbalance within a few percent for small
// fleets while the ring stays tiny (N*128 points).
const DefaultReplicas = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring: keys map to nodes, and adding or
// removing a node only remaps the keys that node owns (plus the slivers
// its virtual nodes steal), never the mapping between two untouched nodes.
// All methods are safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []point // sorted by (hash, node)
	nodes    map[string]bool
}

// NewRing creates an empty ring with the given virtual-node count per
// node (<= 0 uses DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: map[string]bool{}}
}

// Add places node's virtual nodes on the ring (no-op when present).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove takes node's virtual nodes off the ring (no-op when absent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Get returns the node owning key ("" on an empty ring): the first virtual
// node at or clockwise of the key's hash.
func (r *Ring) Get(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node
}

// Nodes returns the member nodes, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// hash64 is the ring's hash: FNV-1a (stdlib-only, stable across processes
// and restarts — the mapping must not depend on process state, or a
// restarted router would re-partition every worker) pushed through a
// splitmix64 finalizer. Raw FNV-1a of near-identical strings ("s#0",
// "s#1", …) clusters on the ring badly enough that one of eight shards
// can own >2x its fair share; the avalanche step spreads the points.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
