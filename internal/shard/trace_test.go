package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"icrowd/internal/obsv"
	"icrowd/internal/platform"
)

// submitOnce runs one assign+submit for worker through the front URL and
// returns the submit response's X-Request-Id (the trace ID).
func submitOnce(t *testing.T, front, worker string) string {
	t.Helper()
	status, body := get(t, front+"/v1/assign?workerId="+worker)
	var ar platform.AssignResponse
	if status != http.StatusOK || json.Unmarshal(body, &ar) != nil || !ar.Assigned {
		t.Fatalf("assign %s: %d %s", worker, status, body)
	}
	payload := fmt.Sprintf(`{"workerId":%q,"taskId":%d,"answer":"YES"}`, worker, ar.TaskID)
	resp, err := http.Post(front+"/v1/submit", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s: %d", worker, resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-Id")
	if _, err := obsv.ParseTraceID(rid); err != nil {
		t.Fatalf("submit X-Request-Id %q is not a trace ID: %v", rid, err)
	}
	return rid
}

// fetchAssembly pulls and decodes the router's cross-process assembly.
func fetchAssembly(t *testing.T, front, rid string) TraceAssembly {
	t.Helper()
	status, body := get(t, front+"/v1/trace/"+rid)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s: %d %s", rid, status, body)
	}
	var asm TraceAssembly
	if err := json.Unmarshal(body, &asm); err != nil {
		t.Fatalf("assembly body %s: %v", body, err)
	}
	return asm
}

// checkSubmitAssembly asserts the canonical cross-process submit trace:
// one router.submit root (origin "router") with the owning shard's
// http.submit span as a child, every span sharing the trace ID.
func checkSubmitAssembly(t *testing.T, asm TraceAssembly, rid, owner string) {
	t.Helper()
	for _, sp := range asm.Spans {
		if sp.TraceID != rid {
			t.Fatalf("span outside trace %s: %+v", rid, sp)
		}
	}
	if len(asm.Tree) != 1 {
		t.Fatalf("assembly has %d roots, want 1: %+v", len(asm.Tree), asm.Tree)
	}
	root := asm.Tree[0]
	if root.Span.Name != "router.submit" || root.Span.Origin != "router" {
		t.Fatalf("root = %s from %s, want router.submit from router", root.Span.Name, root.Span.Origin)
	}
	var shardChild *obsv.TraceNode
	for _, c := range root.Children {
		if c.Span.Name == "http.submit" {
			shardChild = c
		}
	}
	if shardChild == nil {
		t.Fatalf("router.submit has no http.submit child: %+v", root.Children)
	}
	if shardChild.Span.Origin != owner {
		t.Fatalf("http.submit origin %s, want owning shard %s", shardChild.Span.Origin, owner)
	}
	names := map[string]bool{}
	for _, g := range shardChild.Children {
		names[g.Span.Name] = true
	}
	for _, want := range []string{"log.append", "scheme.recompute"} {
		if !names[want] {
			t.Fatalf("http.submit missing %s child: %+v", want, shardChild.Children)
		}
	}
}

// TestTraceAssemblyAcrossFleet is the tentpole's end-to-end pin: a submit
// through the router over two real shards yields one shared 128-bit trace
// whose assembled tree has the router span as root and the owning shard's
// spans beneath it — and the assembly survives killing and restarting a
// shard.
func TestTraceAssemblyAcrossFleet(t *testing.T) {
	dir := t.TempDir()
	shards := make([]*shardProc, 2)
	for i := range shards {
		shards[i] = startShard(t, i, "", filepath.Join(dir, fmt.Sprintf("shard%d.events.log", i)))
	}
	defer func() {
		for _, p := range shards {
			p.kill(t)
		}
	}()
	urls := []string{shards[0].url, shards[1].url}
	rt, err := New(Config{Shards: urls, ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	stop := rt.Start()
	defer stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Find one worker per shard so the test can aim requests at each.
	workerFor := map[string]string{}
	for _, w := range keys(40) {
		owner := rt.ring.Get(w)
		if workerFor[owner] == "" {
			workerFor[owner] = w
		}
	}
	for _, u := range urls {
		if workerFor[u] == "" {
			t.Fatalf("no worker hashes to %s; grow the key set", u)
		}
	}

	w0 := workerFor[urls[0]]
	rid := submitOnce(t, front.URL, w0)
	checkSubmitAssembly(t, fetchAssembly(t, front.URL, rid), rid, urls[0])

	// Kill shard 1: the assembly of shard-0 traces still answers, noting
	// the dark shard as skipped rather than failing the whole query.
	victim := shards[1]
	victim.kill(t)
	deadline := time.Now().Add(5 * time.Second)
	for rt.tracker.Up(victim.url) {
		if time.Now().After(deadline) {
			t.Fatal("router never marked the killed shard down")
		}
		get(t, front.URL+"/v1/status") // passive failure detection
		time.Sleep(10 * time.Millisecond)
	}
	asm := fetchAssembly(t, front.URL, rid)
	checkSubmitAssembly(t, asm, rid, urls[0])
	skipped := false
	for _, s := range asm.Skipped {
		if s == victim.url {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("assembly with dead shard: skipped %v, want %s listed", asm.Skipped, victim.url)
	}

	// Restart the shard at the same address and trace a request through it:
	// the rejoined process contributes fresh spans to new traces.
	shards[1] = startShard(t, 1, victim.addr, victim.logPath)
	deadline = time.Now().Add(5 * time.Second)
	for !rt.tracker.Up(victim.url) {
		if time.Now().After(deadline) {
			t.Fatal("router never re-admitted the restarted shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rid1 := submitOnce(t, front.URL, workerFor[urls[1]])
	checkSubmitAssembly(t, fetchAssembly(t, front.URL, rid1), rid1, urls[1])
	if rid1 == rid {
		t.Fatal("distinct requests shared a trace ID")
	}
}

// TestProxyPropagatesTraceContext pins the wire half against a scripted
// shard: the proxied request carries a traceparent naming the router's
// span, inbound trace context flows through, and the shard's X-Request-Id
// never clobbers the router's echo.
func TestProxyPropagatesTraceContext(t *testing.T) {
	var mu sync.Mutex
	var gotTraceparent string
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/assign") {
			mu.Lock()
			gotTraceparent = r.Header.Get(obsv.TraceparentHeader)
			mu.Unlock()
			w.Header().Set(obsv.RequestIDHeader, "shard-side-id")
			json.NewEncoder(w).Encode(platform.AssignResponse{Assigned: true, TaskID: 1})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer fake.Close()
	rt, err := New(Config{Shards: []string{fake.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/assign?workerId=w1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	if rid == "shard-side-id" {
		t.Fatal("shard's X-Request-Id clobbered the router's echo")
	}
	mu.Lock()
	tp := gotTraceparent
	mu.Unlock()
	sc, ok := obsv.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("proxied request carried unparsable traceparent %q", tp)
	}
	if sc.Trace.String() != rid {
		t.Fatalf("proxied trace %s != echoed X-Request-Id %s", sc.Trace, rid)
	}

	// A caller-supplied traceparent flows through the router to the shard.
	inbound := obsv.NewTraceID()
	req, _ := http.NewRequest("GET", front.URL+"/v1/assign?workerId=w1", nil)
	req.Header.Set(obsv.TraceparentHeader, "00-"+inbound.String()+"-00000000000000cd-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != inbound.String() {
		t.Fatalf("inbound trace not echoed: %q != %s", got, inbound)
	}
	mu.Lock()
	sc, ok = obsv.ParseTraceparent(gotTraceparent)
	mu.Unlock()
	if !ok || sc.Trace != inbound {
		t.Fatalf("inbound trace not propagated to the shard: %q", gotTraceparent)
	}
}

// TestRouterTraceQueryValidation pins the router's own /v1/trace surface:
// the same ?n= bounds and typed 400s as a single server, the ?name= prefix
// filter, and the typed 400 on a malformed assembly ID.
func TestRouterTraceQueryValidation(t *testing.T) {
	front, _, urls, _ := newFleet(t, 2)
	get(t, front.URL+"/v1/assign?workerId=w1")
	get(t, front.URL+"/v1/status")

	for _, q := range []string{"n=0", "n=-5", "n=abc", "n=" + strconv.Itoa(maxTraceQueryN+1)} {
		status, body := get(t, front.URL+"/v1/trace?"+q)
		var er platform.ErrorResponse
		if status != http.StatusBadRequest || json.Unmarshal(body, &er) != nil || er.Code != platform.CodeBadRequest {
			t.Fatalf("GET /v1/trace?%s: %d %s, want typed 400", q, status, body)
		}
	}
	status, body := get(t, front.URL+"/v1/trace?name=router.assign")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/trace?name=: %d", status)
	}
	var tr platform.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("router recorded no router.assign spans")
	}
	for _, sp := range tr.Spans {
		if !strings.HasPrefix(sp.Name, "router.assign") {
			t.Fatalf("name filter leaked %q", sp.Name)
		}
	}

	status, body = get(t, front.URL+"/v1/trace/zzz")
	var er platform.ErrorResponse
	if status != http.StatusBadRequest || json.Unmarshal(body, &er) != nil || er.Code != platform.CodeBadRequest {
		t.Fatalf("malformed assembly id: %d %s, want typed 400", status, body)
	}

	// Unknown trace against shards with no trace endpoint: an empty 200
	// assembly that names both unqueryable shards as skipped.
	unknown := obsv.NewTraceID().String()
	status, body = get(t, front.URL+"/v1/trace/"+unknown)
	if status != http.StatusOK {
		t.Fatalf("unknown assembly: %d %s", status, body)
	}
	var asm TraceAssembly
	if err := json.Unmarshal(body, &asm); err != nil {
		t.Fatal(err)
	}
	if len(asm.Spans) != 0 || len(asm.Tree) != 0 || len(asm.Skipped) != len(urls) {
		t.Fatalf("unknown assembly = %s, want empty with %d skipped", body, len(urls))
	}
}

// sloShard serves a canned /v1/slo body with the given status.
func sloShard(t *testing.T, status int, body any) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/slo" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(body)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestSLORollupMergesShards pins /v1/slo on the router: window counts sum
// across shards with burn rates recomputed from the sums.
func TestSLORollupMergesShards(t *testing.T) {
	part := func(requests, misses int64) obsv.SLOReport {
		return obsv.SLOReport{Objectives: []obsv.SLOObjectiveStatus{{
			Key: "assign", LatencyTargetMS: 5, LatencyGoal: 0.99, ErrorGoal: 0.999,
			Windows: []obsv.SLOWindowStatus{{
				Window: "5m", Requests: requests, LatencyMisses: misses,
				LatencyBurnRate: float64(misses) / float64(requests) / 0.01,
			}},
		}}}
	}
	urls := []string{
		sloShard(t, http.StatusOK, part(90, 0)),
		sloShard(t, http.StatusOK, part(10, 1)),
	}
	rt, err := New(Config{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	status, body := get(t, front.URL+"/v1/slo")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/slo: %d %s", status, body)
	}
	var rep obsv.SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Key != "assign" {
		t.Fatalf("merged report %s", body)
	}
	w := rep.Objectives[0].Windows[0]
	if w.Requests != 100 || w.LatencyMisses != 1 {
		t.Fatalf("merged 5m window %+v, want 100 requests / 1 miss", w)
	}
	// Burn recomputed from fleet totals: (1/100)/(1-0.99) = 1.0.
	if w.LatencyBurnRate < 0.99 || w.LatencyBurnRate > 1.01 {
		t.Fatalf("merged burn %v, want ~1.0", w.LatencyBurnRate)
	}
}

// TestSLORollupRelaysDisabled pins the all-disabled fleet: the router
// relays the shards' typed 404 rather than inventing an empty report.
func TestSLORollupRelaysDisabled(t *testing.T) {
	disabled := platform.ErrorResponse{Code: platform.CodeSLODisabled, Message: "no SLO configured"}
	rt, err := New(Config{Shards: []string{
		sloShard(t, http.StatusNotFound, disabled),
		sloShard(t, http.StatusNotFound, disabled),
	}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	status, body := get(t, front.URL+"/v1/slo")
	var er platform.ErrorResponse
	if status != http.StatusNotFound || json.Unmarshal(body, &er) != nil || er.Code != platform.CodeSLODisabled {
		t.Fatalf("GET /v1/slo on disabled fleet: %d %s, want relayed 404 slo_disabled", status, body)
	}
}
