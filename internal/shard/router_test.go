package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"icrowd/internal/platform"
)

// fakeShard is a scripted icrowd-server stand-in: it records which workers
// hit its write endpoints and serves canned read bodies.
type fakeShard struct {
	mu      sync.Mutex
	assigns []string
	submits []string
	status  platform.StatusResponse
	results map[int]string
	ready   string // readyz status body; "" serves ok
}

func (f *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/assign", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.assigns = append(f.assigns, r.URL.Query().Get("workerId"))
		f.mu.Unlock()
		json.NewEncoder(w).Encode(platform.AssignResponse{Assigned: true, TaskID: 1})
	})
	mux.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		var req platform.SubmitRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.submits = append(f.submits, req.WorkerID)
		f.mu.Unlock()
		json.NewEncoder(w).Encode(platform.SubmitResponse{Accepted: true})
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(f.status)
	})
	mux.HandleFunc("/v1/results", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(platform.ResultsResponse{Results: f.results})
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := f.ready
		if st == "" {
			st = "ok"
		}
		if st == "failed" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]string{"status": st})
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "# HELP fake_total Fake.\n# TYPE fake_total counter\nfake_total 1\n")
	})
	mux.HandleFunc("/v1/projects", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(platform.ProjectListResponse{Projects: []platform.ProjectInfo{
			{ID: "default", Strategy: "baseline-mv", LastSeq: 3, Pending: 1},
		}})
	})
	mux.HandleFunc("/v1/projects/{project}", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(platform.ProjectCreateResponse{ID: r.PathValue("project"), Created: true})
			return
		}
		json.NewEncoder(w).Encode(platform.ProjectInfo{ID: r.PathValue("project"), Strategy: "baseline-mv", LastSeq: 2, Pending: 1})
	})
	return mux
}

// newFleet spins up n fake shards behind a router, returning the router's
// test server, the fakes (index-aligned with urls) and the shard URLs.
func newFleet(t *testing.T, n int) (*httptest.Server, []*fakeShard, []string, *Router) {
	t.Helper()
	fakes := make([]*fakeShard, n)
	urls := make([]string, n)
	for i := range fakes {
		fakes[i] = &fakeShard{results: map[int]string{}}
		srv := httptest.NewServer(fakes[i].handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	rt, err := New(Config{Shards: urls, ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return front, fakes, urls, rt
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestRouterRoutesWritesByWorker(t *testing.T) {
	front, fakes, urls, rt := newFleet(t, 3)
	workers := keys(60)
	for _, w := range workers {
		status, _ := get(t, front.URL+"/v1/assign?workerId="+w)
		if status != http.StatusOK {
			t.Fatalf("assign %s: HTTP %d", w, status)
		}
		body := fmt.Sprintf(`{"workerId":%q,"taskId":1,"answer":"YES"}`, w)
		resp, err := http.Post(front.URL+"/v1/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s: HTTP %d", w, resp.StatusCode)
		}
	}
	// Every worker's assign and submit landed on the ring-owning shard.
	byURL := map[string]*fakeShard{}
	for i, u := range urls {
		byURL[u] = fakes[i]
	}
	for _, w := range workers {
		owner := byURL[rt.ring.Get(w)]
		if !contains(owner.assigns, w) {
			t.Fatalf("worker %s assign did not reach its ring owner", w)
		}
		if !contains(owner.submits, w) {
			t.Fatalf("worker %s submit did not reach its ring owner", w)
		}
	}
	for i, f := range fakes {
		if len(f.assigns) == 0 {
			t.Fatalf("shard %d received no assigns — ring is degenerate", i)
		}
		for _, w := range f.assigns {
			if rt.ring.Get(w) != urls[i] {
				t.Fatalf("worker %s reached shard %d but the ring owns it elsewhere", w, i)
			}
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestRouterMissingWorkerIsTyped400(t *testing.T) {
	front, _, _, _ := newFleet(t, 2)
	status, body := get(t, front.URL+"/v1/assign")
	if status != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", status)
	}
	var er platform.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != platform.CodeBadRequest {
		t.Fatalf("body %s, want code bad_request", body)
	}
}

func TestRouterDownShardGetsTyped503(t *testing.T) {
	front, _, urls, rt := newFleet(t, 3)
	// Find a worker owned by shard 0, then kill shard 0 at the transport
	// level by marking it down (the passive path is exercised in the chaos
	// test against real closed listeners).
	var victim string
	for _, w := range keys(200) {
		if rt.ring.Get(w) == urls[0] {
			victim = w
			break
		}
	}
	if victim == "" {
		t.Fatal("no worker maps to shard 0")
	}
	rt.markDown(urls[0], fmt.Errorf("test: connection refused"))

	status, body := get(t, front.URL+"/v1/assign?workerId="+victim)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", status)
	}
	var er platform.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != platform.CodeShardUnavailable {
		t.Fatalf("body %s, want code shard_unavailable", body)
	}
	resp, err := http.Get(front.URL + "/v1/assign?workerId=" + victim)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}

	// Workers owned by surviving shards still get through.
	var survivor string
	for _, w := range keys(200) {
		if rt.ring.Get(w) != urls[0] {
			survivor = w
			break
		}
	}
	if status, _ := get(t, front.URL+"/v1/assign?workerId="+survivor); status != http.StatusOK {
		t.Fatalf("survivor worker got HTTP %d, want 200", status)
	}
}

func TestRouterProbeReadmitsShard(t *testing.T) {
	front, _, urls, rt := newFleet(t, 2)
	rt.markDown(urls[1], fmt.Errorf("test: down"))
	if rt.tracker.Up(urls[1]) {
		t.Fatal("markDown did not take")
	}
	stop := rt.Start()
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for !rt.tracker.Up(urls[1]) {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never re-admitted the healthy shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the fleet rollup reflects it.
	status, body := get(t, front.URL+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz HTTP %d", status)
	}
	var roll HealthRollup
	if err := json.Unmarshal(body, &roll); err != nil || roll.Status != "ok" {
		t.Fatalf("healthz rollup %s, want status ok", body)
	}
}

func TestRouterStatusAndResultsMerge(t *testing.T) {
	front, fakes, _, _ := newFleet(t, 3)
	fakes[0].status = platform.StatusResponse{Strategy: "baseline-mv", Total: 4, Pending: 1, HITs: 5, Submitted: 4, CostUSD: 0.4, Done: true}
	fakes[1].status = platform.StatusResponse{Strategy: "baseline-mv", Total: 4, Pending: 2, HITs: 3, Submitted: 2, CostUSD: 0.2, Done: false}
	fakes[2].status = platform.StatusResponse{Strategy: "baseline-mv", Total: 4, Pending: 0, HITs: 1, Submitted: 1, CostUSD: 0.1, Done: true}
	// Task 0: 2xYES vs 1xNO -> YES. Task 1: YES/NO tie -> first shard's
	// answer in URL order. Task 2: only NONEs -> NONE. Task 3: one shard
	// decided -> its answer.
	fakes[0].results = map[int]string{0: "YES", 1: "YES", 2: "NONE", 3: "NONE"}
	fakes[1].results = map[int]string{0: "YES", 1: "NO", 2: "NONE", 3: "NO"}
	fakes[2].results = map[int]string{0: "NO", 1: "NONE", 2: "NONE", 3: "NONE"}

	status, body := get(t, front.URL+"/v1/results")
	if status != http.StatusOK {
		t.Fatalf("results HTTP %d", status)
	}
	var res platform.ResultsResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != "YES" {
		t.Fatalf("task 0 = %s, want YES (majority)", res.Results[0])
	}
	if res.Results[1] != "YES" && res.Results[1] != "NO" {
		t.Fatalf("task 1 = %s, want a decided tie-break", res.Results[1])
	}
	if res.Results[2] != "NONE" {
		t.Fatalf("task 2 = %s, want NONE", res.Results[2])
	}
	if res.Results[3] != "NO" {
		t.Fatalf("task 3 = %s, want NO (only decided vote)", res.Results[3])
	}

	status, body = get(t, front.URL+"/v1/status")
	if status != http.StatusOK {
		t.Fatalf("status HTTP %d", status)
	}
	var st platform.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "baseline-mv" || st.Total != 4 {
		t.Fatalf("merged strategy/total = %s/%d", st.Strategy, st.Total)
	}
	if st.Pending != 3 || st.HITs != 9 || st.Submitted != 7 {
		t.Fatalf("merged sums wrong: %+v", st)
	}
	if st.Done {
		t.Fatal("Done must be AND across shards (shard 1 is not done)")
	}
	if st.Completed != 3 { // tasks 0, 1, 3 decided after the merge
		t.Fatalf("Completed = %d, want 3", st.Completed)
	}
}

func TestRouterReadyzRollsUpWorstState(t *testing.T) {
	front, fakes, urls, rt := newFleet(t, 3)
	if status, _ := get(t, front.URL+"/v1/readyz"); status != http.StatusOK {
		t.Fatalf("all-ok readyz HTTP %d, want 200", status)
	}
	fakes[1].ready = "degraded"
	status, body := get(t, front.URL+"/v1/readyz")
	var roll ReadyRollup
	if err := json.Unmarshal(body, &roll); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || roll.Status != "degraded" {
		t.Fatalf("degraded shard: HTTP %d status %s, want 200/degraded", status, roll.Status)
	}
	rt.markDown(urls[2], fmt.Errorf("test: down"))
	status, body = get(t, front.URL+"/v1/readyz")
	if err := json.Unmarshal(body, &roll); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || roll.Status != "unavailable" {
		t.Fatalf("down shard: HTTP %d status %s, want 503/unavailable", status, roll.Status)
	}
}

func TestRouterMetricsMergesShardsAndSelf(t *testing.T) {
	front, _, urls, _ := newFleet(t, 2)
	// Generate some router-side traffic so its own counters exist.
	get(t, front.URL+"/v1/assign?workerId=w0001")
	status, body := get(t, front.URL+"/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics HTTP %d", status)
	}
	out := string(body)
	for _, u := range urls {
		if !strings.Contains(out, `fake_total{shard="`+u+`"} 1`) {
			t.Fatalf("missing shard %s sample in merged metrics:\n%s", u, out)
		}
	}
	if strings.Count(out, "# TYPE fake_total counter") != 1 {
		t.Fatalf("family header not merged:\n%s", out)
	}
	if !strings.Contains(out, `shard="router"`) {
		t.Fatalf("router's own metrics missing:\n%s", out)
	}
	// The router's own per-backend series use the target label so the
	// injected shard label never duplicates: one shard= pair per sample.
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, `shard="`) > 1 {
			t.Fatalf("duplicate shard label in merged sample: %s", line)
		}
	}
	if !strings.Contains(out, `target="`+urls[0]+`"`) {
		t.Fatalf("router per-backend series missing target label:\n%s", out)
	}
}

func TestRouterProjectBroadcast(t *testing.T) {
	front, _, urls, rt := newFleet(t, 3)
	req, _ := http.NewRequest(http.MethodPut, front.URL+"/v1/projects/batch7", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT HTTP %d: %s", resp.StatusCode, body)
	}
	var cr platform.ProjectCreateResponse
	if err := json.Unmarshal(body, &cr); err != nil || cr.ID != "batch7" || !cr.Created {
		t.Fatalf("create response %s", body)
	}

	// List merges shard views: Pending sums, LastSeq max.
	status, body := get(t, front.URL+"/v1/projects")
	if status != http.StatusOK {
		t.Fatalf("list HTTP %d", status)
	}
	var list platform.ProjectListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Projects) != 1 || list.Projects[0].ID != "default" {
		t.Fatalf("list %s", body)
	}
	if list.Projects[0].Pending != 3 || list.Projects[0].LastSeq != 3 {
		t.Fatalf("merged pending/lastSeq = %d/%d, want 3/3", list.Projects[0].Pending, list.Projects[0].LastSeq)
	}

	// With a shard down, create must refuse: the project would be missing
	// for every worker hashing to the dead shard.
	rt.markDown(urls[0], fmt.Errorf("test: down"))
	req, _ = http.NewRequest(http.MethodPut, front.URL+"/v1/projects/batch8", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var er platform.ErrorResponse
	if resp.StatusCode != http.StatusServiceUnavailable ||
		json.Unmarshal(body, &er) != nil || er.Code != platform.CodeShardUnavailable {
		t.Fatalf("PUT with down shard: HTTP %d %s, want typed 503", resp.StatusCode, body)
	}
}

func TestRouterUnknownPathIsTyped404(t *testing.T) {
	front, _, _, _ := newFleet(t, 1)
	status, body := get(t, front.URL+"/v1/nope")
	var er platform.ErrorResponse
	if status != http.StatusNotFound || json.Unmarshal(body, &er) != nil || er.Code != platform.CodeNotFound {
		t.Fatalf("HTTP %d %s, want typed 404", status, body)
	}
}
