package shard

import (
	"fmt"
	"testing"
)

// keys generates n synthetic worker IDs shaped like the simulator's.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%04d", i)
	}
	return out
}

func TestRingGetEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Get("w1"); got != "" {
		t.Fatalf("Get on empty ring = %q, want \"\"", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestRingDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter: a restarted router that learns
		// its shard list in a different order must map workers identically.
		for _, n := range []string{"s2", "s0", "s1"} {
			r.Add(n)
		}
		return r
	}
	a, b := build(), build()
	for _, k := range keys(500) {
		if a.Get(k) != b.Get(k) {
			t.Fatalf("ring mapping differs between identical rings for key %q", k)
		}
	}
}

// TestRingKeyStability is the consistent-hashing contract: removing one
// node only remaps the keys that node owned, and adding it back restores
// the original mapping exactly.
func TestRingKeyStability(t *testing.T) {
	cases := []struct {
		name   string
		nodes  []string
		remove string
	}{
		{"three-nodes-drop-first", []string{"http://s0", "http://s1", "http://s2"}, "http://s0"},
		{"three-nodes-drop-last", []string{"http://s0", "http://s1", "http://s2"}, "http://s2"},
		{"five-nodes-drop-middle", []string{"a", "b", "c", "d", "e"}, "c"},
		{"two-nodes", []string{"only-a", "only-b"}, "only-b"},
	}
	ks := keys(2000)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing(0)
			for _, n := range tc.nodes {
				r.Add(n)
			}
			before := make(map[string]string, len(ks))
			for _, k := range ks {
				before[k] = r.Get(k)
			}

			r.Remove(tc.remove)
			moved := 0
			for _, k := range ks {
				after := r.Get(k)
				if after == tc.remove {
					t.Fatalf("key %q still maps to removed node %q", k, tc.remove)
				}
				if before[k] != tc.remove && after != before[k] {
					t.Fatalf("key %q moved from %q to %q although its node %q stayed",
						k, before[k], after, before[k])
				}
				if before[k] == tc.remove {
					moved++
				}
			}
			if moved == 0 {
				t.Fatalf("removed node %q owned no keys out of %d — ring is degenerate", tc.remove, len(ks))
			}

			// Re-adding restores the exact original mapping (virtual-node
			// hashes depend only on the node name).
			r.Add(tc.remove)
			for _, k := range ks {
				if got := r.Get(k); got != before[k] {
					t.Fatalf("after re-add, key %q maps to %q, want original %q", k, got, before[k])
				}
			}
		})
	}
}

// TestRingBalance pins that virtual nodes spread keys roughly evenly: no
// shard owns more than twice the fair share at the default replica count.
func TestRingBalance(t *testing.T) {
	cases := []struct {
		shards int
	}{{2}, {3}, {5}, {8}}
	ks := keys(10000)
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%d-shards", tc.shards), func(t *testing.T) {
			r := NewRing(0)
			for i := 0; i < tc.shards; i++ {
				r.Add(fmt.Sprintf("http://127.0.0.1:%d", 9000+i))
			}
			counts := map[string]int{}
			for _, k := range ks {
				counts[r.Get(k)]++
			}
			if len(counts) != tc.shards {
				t.Fatalf("keys landed on %d shards, want %d", len(counts), tc.shards)
			}
			fair := len(ks) / tc.shards
			for node, c := range counts {
				if c > 2*fair {
					t.Fatalf("shard %s owns %d of %d keys (> 2x fair share %d)", node, c, len(ks), fair)
				}
				if c < fair/4 {
					t.Fatalf("shard %s owns only %d of %d keys (< fair share/4 = %d)", node, c, len(ks), fair/4)
				}
			}
		})
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(32)
	r.Add("s0")
	r.Add("s0") // duplicate add must not double the virtual nodes
	r.Add("s1")
	if got := len(r.points); got != 2*32 {
		t.Fatalf("points = %d, want %d", got, 2*32)
	}
	r.Remove("missing") // no-op
	r.Remove("s1")
	r.Remove("s1") // double remove: no-op
	if got, want := fmt.Sprint(r.Nodes()), "[s0]"; got != want {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for _, k := range keys(100) {
		if r.Get(k) != "s0" {
			t.Fatalf("single-node ring routed %q elsewhere", k)
		}
	}
}
