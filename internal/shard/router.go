package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"icrowd/internal/obsv"
	"icrowd/internal/platform"
)

// Router is the HTTP front for a fleet of icrowd-server shards. It speaks
// the same API as a single server, so clients (and the load harness) point
// at the router unchanged:
//
//   - Writes (/assign, /submit, /inactive) are proxied verbatim to the
//     shard owning the request's worker ID on the consistent-hash ring.
//     The owning shard's lease, idempotency and event-log machinery apply
//     exactly as on a single server, because it sees the worker's whole
//     history.
//   - Reads fan out: /status and /results merge every live shard's answer
//     (per-task majority vote), /v1/healthz and /v1/readyz roll up shard
//     probes, /v1/metrics serves the union of every shard's Prometheus
//     exposition with a shard label injected.
//   - /v1/projects is merged across shards; PUT /v1/projects/{id}
//     broadcasts so the project exists on every shard before any worker
//     routes to it.
//
// A dead shard takes only its key range out: requests routed to it get a
// typed 503 shard_unavailable with a Retry-After hint, survivors keep
// serving theirs, and the health probe re-admits the shard once it answers
// /v1/healthz again (after replaying its own event log).

// Config configures a Router.
type Config struct {
	// Shards are the base URLs of the icrowd-server instances fronted by
	// the router (e.g. "http://127.0.0.1:9001"). Required, order
	// irrelevant — the ring depends only on the URL strings.
	Shards []string
	// Replicas is the virtual-node count per shard (<= 0 uses
	// DefaultReplicas).
	Replicas int
	// ProbeInterval is how often the background health loop probes each
	// shard (<= 0 uses 2s). It also sizes the Retry-After hint on
	// shard_unavailable responses: by the next probe the shard may be back.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each individual probe (<= 0 uses 2s).
	ProbeTimeout time.Duration
	// Client issues proxy and probe requests (nil uses a client with a 30s
	// timeout).
	Client *http.Client
	// Logger receives router events (nil uses slog.Default()).
	Logger *slog.Logger
	// Registry receives the router's own metrics (nil creates one); it is
	// appended to the merged /v1/metrics output under shard="router".
	Registry *obsv.Registry
	// Tracer records the router's own request spans (nil creates one with
	// the default capacity). The router continues any inbound trace
	// context, propagates it to the shards on every proxy and fan-out, and
	// contributes its spans to GET /v1/trace/{traceid} under origin
	// "router".
	Tracer *obsv.Tracer
}

// Router fronts the shard fleet. Create with New; serve its Handler.
type Router struct {
	cfg     Config
	ring    *Ring
	tracker *Tracker
	client  *http.Client
	logger  *slog.Logger
	reg     *obsv.Registry
	tracer  *obsv.Tracer
	mux     *http.ServeMux
	// retryAfter is the Retry-After hint attached to shard_unavailable.
	retryAfter time.Duration

	proxied     map[string]*obsv.Counter
	unavailable map[string]*obsv.Counter
	skipped     map[string]*obsv.Counter
	upGauge     map[string]*obsv.Gauge
}

// New builds a router over cfg.Shards.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: router needs at least one shard URL")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = obsv.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obsv.NewTracer(0)
	}
	rt := &Router{
		cfg:         cfg,
		ring:        NewRing(cfg.Replicas),
		client:      cfg.Client,
		logger:      cfg.Logger,
		reg:         cfg.Registry,
		tracer:      cfg.Tracer,
		retryAfter:  cfg.ProbeInterval,
		proxied:     map[string]*obsv.Counter{},
		unavailable: map[string]*obsv.Counter{},
		skipped:     map[string]*obsv.Counter{},
		upGauge:     map[string]*obsv.Gauge{},
	}
	seen := map[string]bool{}
	var shards []string
	for _, s := range cfg.Shards {
		s = strings.TrimRight(s, "/")
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		shards = append(shards, s)
		rt.ring.Add(s)
		rt.proxied[s] = rt.reg.Counter("icrowd_router_proxied_total",
			"Requests proxied to each shard.", "target", s)
		rt.unavailable[s] = rt.reg.Counter("icrowd_router_shard_unavailable_total",
			"Requests rejected because the owning shard was down.", "target", s)
		rt.skipped[s] = rt.reg.Counter("icrowd_router_fanout_skipped_total",
			"Fan-out reads that skipped a down shard.", "target", s)
		g := rt.reg.Gauge("icrowd_router_shard_up",
			"Whether the router currently routes to the shard (1 up, 0 down).", "target", s)
		g.Set(1)
		rt.upGauge[s] = g
	}
	if len(shards) == 0 {
		return nil, errors.New("shard: router needs at least one shard URL")
	}
	rt.tracker = NewTracker(shards, cfg.Client, cfg.ProbeTimeout)
	rt.mux = rt.routes()
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start runs the health-probe loop until the returned stop function is
// called. Each round probes every shard's /v1/healthz and flips the
// up-gauges, re-admitting restarted shards.
func (rt *Router) Start() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(rt.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				rt.tracker.ProbeAll(ctx)
				rt.syncGauges()
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// Shards returns the fleet's current health states.
func (rt *Router) Shards() []ShardState { return rt.tracker.Snapshot() }

// syncGauges mirrors the tracker's state into the up-gauges.
func (rt *Router) syncGauges() {
	for _, st := range rt.tracker.Snapshot() {
		v := 0.0
		if st.Up {
			v = 1
		}
		if g := rt.upGauge[st.URL]; g != nil {
			g.Set(v)
		}
	}
}

// markDown records a passive failure (a proxy attempt hit a transport
// error) and flips the shard's gauge.
func (rt *Router) markDown(shard string, err error) {
	rt.tracker.MarkDown(shard, err)
	if g := rt.upGauge[shard]; g != nil {
		g.Set(0)
	}
	rt.logger.LogAttrs(context.Background(), slog.LevelWarn, "shard down",
		slog.String("shard", shard), slog.String("err", err.Error()))
}

// routes builds the mux. The surface mirrors a single icrowd-server so
// existing clients work unchanged against the router.
func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	type ep struct {
		name    string
		method  string
		handler http.HandlerFunc
	}
	eps := []ep{
		{"assign", http.MethodGet, rt.writeHandler(workerFromQuery)},
		{"submit", http.MethodPost, rt.writeHandler(workerFromSubmitBody)},
		{"inactive", http.MethodPost, rt.writeHandler(workerFromQueryOrBody)},
		{"status", http.MethodGet, rt.handleStatus},
		{"results", http.MethodGet, rt.handleResults},
	}
	for _, e := range eps {
		h := requireMethod(e.method, rt.instrument(e.name, e.handler))
		mux.HandleFunc("/v1/"+e.name, h)
		mux.HandleFunc("/"+e.name, h) // legacy unversioned alias
		mux.HandleFunc("/v1/projects/{project}/"+e.name, h)
	}
	mux.HandleFunc("/v1/projects", requireMethod(http.MethodGet, rt.handleProjectList))
	mux.HandleFunc("/v1/projects/{project}", rt.handleProjectRoot)
	mux.HandleFunc("/v1/trace", requireMethod(http.MethodGet, rt.handleTrace))
	mux.HandleFunc("/v1/trace/{traceid}", requireMethod(http.MethodGet, rt.handleTraceByID))
	mux.HandleFunc("/v1/slo", requireMethod(http.MethodGet, rt.handleSLO))
	mux.HandleFunc("/v1/metrics", requireMethod(http.MethodGet, rt.handleMetrics))
	mux.HandleFunc("/v1/healthz", requireMethod(http.MethodGet, rt.handleHealthz))
	mux.HandleFunc("/v1/readyz", requireMethod(http.MethodGet, rt.handleReadyz))
	mux.HandleFunc("/v1/shards", requireMethod(http.MethodGet, rt.handleShards))
	mux.HandleFunc("/", rt.handleNotFound)
	return mux
}

// instrument opens a router span for the request — continuing any inbound
// trace context the same way a single server's middleware does — echoes the
// request ID, and threads the span through the context so proxy and fan-out
// calls propagate it to the shards. The router's span becomes the root of
// the cross-process trace; each shard's http.* span hangs off it.
func (rt *Router) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp, rid := rt.tracer.StartServerSpan(r, "router."+name)
		if sp != nil {
			w.Header().Set(obsv.RequestIDHeader, rid)
			r = r.WithContext(obsv.ContextWithSpan(r.Context(), sp))
			defer sp.End()
		}
		h(w, r)
	}
}

// requireMethod guards a handler with the endpoint's method, answering the
// same typed 405 the shards do.
func requireMethod(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, platform.CodeMethodNotAllowed, "method not allowed")
			return
		}
		h(w, r)
	}
}

// ---- write path: route by worker, proxy to the owning shard ----

// workerExtractor pulls the worker ID out of a write request (body already
// read so it can be both inspected and forwarded).
type workerExtractor func(r *http.Request, body []byte) string

func workerFromQuery(r *http.Request, _ []byte) string {
	return r.URL.Query().Get("workerId")
}

func workerFromSubmitBody(_ *http.Request, body []byte) string {
	var req platform.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	return req.WorkerID
}

func workerFromQueryOrBody(r *http.Request, body []byte) string {
	if w := r.URL.Query().Get("workerId"); w != "" {
		return w
	}
	var req platform.InactiveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	return req.WorkerID
}

// writeHandler proxies a write to the shard owning the request's worker.
func (rt *Router) writeHandler(extract workerExtractor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, platform.CodeBadRequest, "read body: "+err.Error())
			return
		}
		worker := extract(r, body)
		if worker == "" {
			writeError(w, http.StatusBadRequest, platform.CodeBadRequest, "workerId required")
			return
		}
		shard := rt.ring.Get(worker)
		if !rt.tracker.Up(shard) {
			rt.writeShardUnavailable(w, shard)
			return
		}
		rt.proxy(w, r, shard, body)
	}
}

// proxy forwards the request verbatim to shard and copies the response
// back — status, typed error bodies and Retry-After hints included, so the
// client sees exactly what the shard said. A transport failure marks the
// shard down and degrades to the typed 503 (nothing was applied: the
// request never reached a handler that logs events).
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, shard string, body []byte) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shard+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, platform.CodeInternal, err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	sp := obsv.SpanFromContext(r.Context())
	sp.Annotate("shard=" + shard)
	obsv.InjectTraceparent(req, sp)
	resp, err := rt.client.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; the shard is not to blame.
			writeError(w, http.StatusBadRequest, platform.CodeBadRequest, "client cancelled request")
			return
		}
		rt.markDown(shard, err)
		rt.writeShardUnavailable(w, shard)
		return
	}
	defer resp.Body.Close()
	if c := rt.proxied[shard]; c != nil {
		c.Inc()
	}
	// The shard's X-Request-Id must not clobber the one the router already
	// echoed: with tracing on, both name the same trace, and the router's
	// copy is the one that matches a caller-supplied X-Request-Id verbatim.
	for _, h := range []string{"Content-Type", "Retry-After", "X-Request-Id"} {
		if v := resp.Header.Get(h); v != "" && w.Header().Get(h) == "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // best effort once headers are out
}

// writeShardUnavailable answers the typed 503 for a down shard, hinting
// the client to retry after the next probe round may have re-admitted it.
func (rt *Router) writeShardUnavailable(w http.ResponseWriter, shard string) {
	if c := rt.unavailable[shard]; c != nil {
		c.Inc()
	}
	secs := int64((rt.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusServiceUnavailable, platform.CodeShardUnavailable,
		"shard "+shard+" is unavailable; its key range will resume after it rejoins")
}

// ---- read path: fan out and merge ----

// shardResult is one shard's answer to a fan-out read.
type shardResult struct {
	shard  string
	status int
	body   []byte
	err    error
}

var errShardDown = errors.New("shard down")

// fanout GETs path on every shard concurrently (down shards are skipped
// with err set), returning results in ring-node order (sorted by URL) so
// merges are deterministic.
func (rt *Router) fanout(ctx context.Context, path string) []shardResult {
	shards := rt.ring.Nodes()
	out := make([]shardResult, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		out[i] = shardResult{shard: s}
		if !rt.tracker.Up(s) {
			out[i].err = errShardDown
			if c := rt.skipped[s]; c != nil {
				c.Inc()
			}
			continue
		}
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, s+path, nil)
			if err != nil {
				out[i].err = err
				return
			}
			obsv.InjectTraceparent(req, obsv.SpanFromContext(ctx))
			resp, err := rt.client.Do(req)
			if err != nil {
				if ctx.Err() == nil {
					rt.markDown(s, err)
				}
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			if err != nil {
				out[i].err = err
				return
			}
			out[i].status = resp.StatusCode
			out[i].body = body
		}(i, s)
	}
	wg.Wait()
	return out
}

// relayOrUnavailable handles a fan-out where no shard produced a 2xx: the
// first non-2xx response is relayed as-is (it is already a typed error —
// e.g. project_not_found), and if nothing answered at all the router emits
// its own 503.
func relayOrUnavailable(w http.ResponseWriter, results []shardResult) {
	for _, res := range results {
		if res.err == nil && res.status != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			w.Write(res.body) //nolint:errcheck
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, platform.CodeShardUnavailable,
		"no shard available")
}

// basePath returns the shard-side path prefix for the request: the project
// mount when the request came in project-scoped, the default mount
// otherwise (legacy unversioned aliases are normalized to /v1).
func basePath(r *http.Request) string {
	if p := r.PathValue("project"); p != "" {
		return "/v1/projects/" + p
	}
	return "/v1"
}

// decode2xx unmarshals every successful result into fresh T values,
// keeping shard order.
func decode2xx[T any](results []shardResult) []T {
	var out []T
	for _, res := range results {
		if res.err != nil || res.status/100 != 2 {
			continue
		}
		var v T
		if err := json.Unmarshal(res.body, &v); err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}

func ok2xx(results []shardResult) int {
	n := 0
	for _, res := range results {
		if res.err == nil && res.status/100 == 2 {
			n++
		}
	}
	return n
}

// mergeResults majority-votes each task across shards. NONE answers do not
// vote; a YES/NO tie keeps the first shard's answer (ring-node order, so
// the choice is deterministic), and a task every shard reports NONE stays
// NONE.
func mergeResults(parts []platform.ResultsResponse) map[int]string {
	merged := map[int]string{}
	yes := map[int]int{}
	no := map[int]int{}
	first := map[int]string{}
	for _, p := range parts {
		for t, a := range p.Results {
			if _, ok := merged[t]; !ok {
				merged[t] = "NONE"
			}
			switch a {
			case "YES":
				yes[t]++
			case "NO":
				no[t]++
			default:
				continue
			}
			if _, ok := first[t]; !ok {
				first[t] = a
			}
		}
	}
	for t := range merged {
		switch {
		case yes[t] > no[t]:
			merged[t] = "YES"
		case no[t] > yes[t]:
			merged[t] = "NO"
		case yes[t] > 0:
			merged[t] = first[t]
		}
	}
	return merged
}

// handleResults serves the merged cross-shard results view.
func (rt *Router) handleResults(w http.ResponseWriter, r *http.Request) {
	results := rt.fanout(r.Context(), basePath(r)+"/results")
	if ok2xx(results) == 0 {
		relayOrUnavailable(w, results)
		return
	}
	merged := mergeResults(decode2xx[platform.ResultsResponse](results))
	writeJSON(w, http.StatusOK, platform.ResultsResponse{Results: merged})
}

// handleStatus merges every live shard's status: counters sum, Total is
// the shared dataset size (max), Done only once every live shard is done,
// and Completed counts tasks whose cross-shard majority vote is decided —
// the same number a client would get by merging /results itself.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	base := basePath(r)
	var stRes, resRes []shardResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); stRes = rt.fanout(r.Context(), base+"/status") }()
	go func() { defer wg.Done(); resRes = rt.fanout(r.Context(), base+"/results") }()
	wg.Wait()
	if ok2xx(stRes) == 0 {
		relayOrUnavailable(w, stRes)
		return
	}
	parts := decode2xx[platform.StatusResponse](stRes)
	merged := platform.StatusResponse{Done: true}
	for _, p := range parts {
		if merged.Strategy == "" {
			merged.Strategy = p.Strategy
		}
		if p.Total > merged.Total {
			merged.Total = p.Total
		}
		merged.Pending += p.Pending
		merged.HITs += p.HITs
		merged.Submitted += p.Submitted
		merged.CostUSD += p.CostUSD
		merged.Done = merged.Done && p.Done
	}
	for _, a := range mergeResults(decode2xx[platform.ResultsResponse](resRes)) {
		if a != "NONE" {
			merged.Completed++
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// ---- health, metrics, shards ----

// HealthRollup is the router's /v1/healthz body: the router's own
// liveness plus each shard's tracked state.
type HealthRollup struct {
	// Status is "ok" when every shard is up, "degraded" otherwise. The
	// rollup itself always answers 200 — it reports the router alive.
	Status string       `json:"status"`
	Shards []ShardState `json:"shards"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	roll := HealthRollup{Status: "ok", Shards: rt.tracker.Snapshot()}
	for _, s := range roll.Shards {
		if !s.Up {
			roll.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, roll)
}

// ReadyState is one shard's readiness inside ReadyRollup.
type ReadyState struct {
	URL string `json:"url"`
	// Status is the shard's own readyz status ("unavailable" when the
	// shard could not be reached or answered non-2xx).
	Status string `json:"status"`
}

// ReadyRollup is the router's /v1/readyz body.
type ReadyRollup struct {
	// Status is "ok" when every shard is ready, "degraded" when some shard
	// reports degraded, "unavailable" (HTTP 503) when any shard is down or
	// unready — with a shard down, part of the key range rejects writes,
	// so the fleet as a whole is not ready.
	Status string       `json:"status"`
	Shards []ReadyState `json:"shards"`
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	results := rt.fanout(r.Context(), "/v1/readyz")
	roll := ReadyRollup{Status: "ok"}
	status := http.StatusOK
	for _, res := range results {
		rs := ReadyState{URL: res.shard, Status: "unavailable"}
		if res.err == nil && res.status/100 == 2 {
			var probe obsv.ProbeResponse
			if err := json.Unmarshal(res.body, &probe); err == nil && probe.Status != "" {
				rs.Status = probe.Status
			} else {
				rs.Status = "ok"
			}
		}
		switch rs.Status {
		case "unavailable", "failed":
			roll.Status = "unavailable"
			status = http.StatusServiceUnavailable
		case "degraded":
			if roll.Status == "ok" {
				roll.Status = "degraded"
			}
		}
		roll.Shards = append(roll.Shards, rs)
	}
	writeJSON(w, status, roll)
}

// handleMetrics serves the union of every live shard's Prometheus
// exposition plus the router's own, each sample labelled with its origin.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	results := rt.fanout(r.Context(), "/v1/metrics")
	var parts []obsv.Exposition
	for _, res := range results {
		if res.err != nil || res.status/100 != 2 {
			continue
		}
		parts = append(parts, obsv.Exposition{Value: res.shard, Text: string(res.body)})
	}
	var own strings.Builder
	rt.reg.WritePrometheus(&own)
	parts = append(parts, obsv.Exposition{Value: "router", Text: own.String()})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, obsv.MergeExpositions("shard", parts)) //nolint:errcheck
}

// ShardsResponse is the /v1/shards body: the fleet as the router sees it.
type ShardsResponse struct {
	Shards []ShardState `json:"shards"`
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ShardsResponse{Shards: rt.tracker.Snapshot()})
}

// ---- tracing and SLO rollups ----

// maxTraceQueryN mirrors the shards' bound on GET /v1/trace's ?n=.
const maxTraceQueryN = 10000

// handleTrace serves the router's OWN recent spans (router.* request spans
// and probe activity), with the same ?n= bounds and ?name= prefix filter a
// single server exposes. Cross-process assembly lives one level down at
// /v1/trace/{traceid}.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > maxTraceQueryN {
			writeError(w, http.StatusBadRequest, platform.CodeBadRequest,
				"n must be an integer in [1, "+strconv.Itoa(maxTraceQueryN)+"]")
			return
		}
		n = v
	}
	spans := rt.tracer.RecentFiltered(n, r.URL.Query().Get("name"))
	if spans == nil {
		spans = []obsv.SpanRecord{}
	}
	writeJSON(w, http.StatusOK, platform.TraceResponse{Spans: spans})
}

// TraceAssembly is the router's GET /v1/trace/{traceid} body: every span
// the fleet recorded for the trace — the router's own plus each shard's,
// tagged with their origin — and the assembled parent/child tree. It is the
// trace analogue of the merged /v1/metrics exposition.
type TraceAssembly struct {
	// TraceID is the canonical 32-hex trace being assembled.
	TraceID string `json:"traceId"`
	// Spans is the flat union across processes, each tagged with Origin
	// ("router" or the shard's base URL).
	Spans []obsv.OriginSpan `json:"spans"`
	// Tree is the assembled forest: normally a single root (the router's
	// request span) with shard spans as descendants. Spans whose parent was
	// evicted from a ring surface as extra roots rather than disappearing.
	Tree []*obsv.TraceNode `json:"tree"`
	// Skipped lists shards that could not be queried (down or answering
	// garbage): their spans, if any, are missing from the assembly.
	Skipped []string `json:"skipped,omitempty"`
}

// handleTraceByID assembles the cross-process trace: fan out to every live
// shard's /v1/trace/{traceid}, merge with the router's own ring, and build
// the tree. Unknown traces return an empty assembly (200), matching the
// single-server contract; a malformed ID is a typed 400.
func (rt *Router) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, err := obsv.ParseTraceID(r.PathValue("traceid"))
	if err != nil {
		writeError(w, http.StatusBadRequest, platform.CodeBadRequest,
			"traceid must be 32 hex characters")
		return
	}
	results := rt.fanout(r.Context(), "/v1/trace/"+id.String())
	asm := TraceAssembly{TraceID: id.String(), Spans: []obsv.OriginSpan{}}
	for _, rec := range rt.tracer.ByTrace(id) {
		asm.Spans = append(asm.Spans, obsv.OriginSpan{SpanRecord: rec, Origin: "router"})
	}
	for _, res := range results {
		if res.err != nil || res.status/100 != 2 {
			asm.Skipped = append(asm.Skipped, res.shard)
			continue
		}
		var tq platform.TraceQueryResponse
		if err := json.Unmarshal(res.body, &tq); err != nil {
			asm.Skipped = append(asm.Skipped, res.shard)
			continue
		}
		for _, rec := range tq.Spans {
			asm.Spans = append(asm.Spans, obsv.OriginSpan{SpanRecord: rec, Origin: res.shard})
		}
	}
	asm.Tree = obsv.BuildTraceTree(asm.Spans)
	writeJSON(w, http.StatusOK, asm)
}

// handleSLO rolls up the fleet's error budgets: window counts sum across
// shards and burn rates are recomputed from the sums, so the answer is what
// a single server carrying the whole load would report. When no shard has
// an SLO engine the first typed 404 (slo_disabled) is relayed as-is.
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	results := rt.fanout(r.Context(), "/v1/slo")
	parts := decode2xx[obsv.SLOReport](results)
	if len(parts) == 0 {
		relayOrUnavailable(w, results)
		return
	}
	writeJSON(w, http.StatusOK, obsv.MergeSLOReports(parts))
}

// ---- projects ----

// handleProjectList unions every live shard's project list: per-worker
// state (Pending) sums, LastSeq is the max across shards (each shard logs
// its own partition of the project's events).
func (rt *Router) handleProjectList(w http.ResponseWriter, r *http.Request) {
	results := rt.fanout(r.Context(), "/v1/projects")
	if ok2xx(results) == 0 {
		relayOrUnavailable(w, results)
		return
	}
	byID := map[string]*platform.ProjectInfo{}
	var order []string
	for _, part := range decode2xx[platform.ProjectListResponse](results) {
		for _, p := range part.Projects {
			info, ok := byID[p.ID]
			if !ok {
				cp := p
				byID[p.ID] = &cp
				order = append(order, p.ID)
				continue
			}
			info.Pending += p.Pending
			if p.LastSeq > info.LastSeq {
				info.LastSeq = p.LastSeq
			}
		}
	}
	// Default project first, the rest by id — the single-server order.
	sort.SliceStable(order, func(i, j int) bool {
		if (order[i] == "default") != (order[j] == "default") {
			return order[i] == "default"
		}
		return order[i] < order[j]
	})
	resp := platform.ProjectListResponse{Projects: []platform.ProjectInfo{}}
	for _, id := range order {
		resp.Projects = append(resp.Projects, *byID[id])
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleProjectRoot serves GET (merged describe) and PUT (broadcast
// create) for one project.
func (rt *Router) handleProjectRoot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("project")
	switch r.Method {
	case http.MethodGet:
		results := rt.fanout(r.Context(), "/v1/projects/"+id)
		if ok2xx(results) == 0 {
			relayOrUnavailable(w, results)
			return
		}
		var merged platform.ProjectInfo
		for i, p := range decode2xx[platform.ProjectInfo](results) {
			if i == 0 {
				merged = p
				continue
			}
			merged.Pending += p.Pending
			if p.LastSeq > merged.LastSeq {
				merged.LastSeq = p.LastSeq
			}
		}
		writeJSON(w, http.StatusOK, merged)
	case http.MethodPut:
		rt.broadcastCreate(w, r, id)
	default:
		writeError(w, http.StatusMethodNotAllowed, platform.CodeMethodNotAllowed, "method not allowed")
	}
}

// broadcastCreate PUTs the project on every shard. Creation must reach the
// whole fleet — a worker can hash to any shard, so a project existing on
// only some of them would 404 for part of the crowd. Any down shard fails
// the call with the typed 503 (the PUT is idempotent; retry once the fleet
// is whole).
func (rt *Router) broadcastCreate(w http.ResponseWriter, r *http.Request, id string) {
	shards := rt.ring.Nodes()
	results := make([]shardResult, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		results[i] = shardResult{shard: s}
		if !rt.tracker.Up(s) {
			results[i].err = errShardDown
			continue
		}
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPut, s+"/v1/projects/"+id, nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				if r.Context().Err() == nil {
					rt.markDown(s, err)
				}
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			results[i].status = resp.StatusCode
			results[i].body = body
		}(i, s)
	}
	wg.Wait()
	created := false
	for _, res := range results {
		if res.err != nil {
			rt.writeShardUnavailable(w, res.shard)
			return
		}
		if res.status/100 != 2 {
			// Relay the shard's typed rejection (bad id, log failure, ...).
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			w.Write(res.body) //nolint:errcheck
			return
		}
		var cr platform.ProjectCreateResponse
		if err := json.Unmarshal(res.body, &cr); err == nil && cr.Created {
			created = true
		}
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, platform.ProjectCreateResponse{ID: id, Created: created})
}

// handleNotFound mirrors the shards' typed 404.
func (rt *Router) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, platform.CodeNotFound, "no such endpoint: "+r.URL.Path)
}

// ---- small helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, platform.ErrorResponse{Code: code, Message: msg})
}
