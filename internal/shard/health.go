package shard

import (
	"context"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Shard health tracking. The router learns about a dead shard two ways:
// passively, when proxying to it fails at the transport level (the fastest
// signal — the very request that hit the failure turns into a typed 503),
// and actively, from a background probe loop that GETs each shard's
// /v1/healthz. The probe loop is also the only path back UP: once a
// restarted shard answers its health check again the router re-admits it
// and its key range resumes serving. Down shards stay in the ring — their
// range answers shard_unavailable rather than remapping onto survivors,
// which would split each worker's history across two event logs.

// ShardState is one shard's health as reported by /v1/shards.
type ShardState struct {
	// URL is the shard's base URL (its identity in the ring).
	URL string `json:"url"`
	// Up reports whether the router currently routes to the shard.
	Up bool `json:"up"`
	// LastErr is the most recent failure ("" while up).
	LastErr string `json:"lastErr,omitempty"`
	// Since is when the shard entered its current state.
	Since time.Time `json:"since"`
}

// Tracker maintains up/down state for a fixed set of shards. All methods
// are safe for concurrent use.
type Tracker struct {
	client  *http.Client
	timeout time.Duration

	mu     sync.Mutex
	states map[string]*ShardState
}

// NewTracker creates a tracker over the given shard base URLs. Shards
// start optimistically up — the first request or probe corrects the
// assumption within one round trip, and starting down would reject every
// request during the window before the first probe completes. client is
// used for probes (nil uses http.DefaultClient); timeout bounds each probe
// (<= 0 uses 2s).
func NewTracker(shards []string, client *http.Client, timeout time.Duration) *Tracker {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	t := &Tracker{client: client, timeout: timeout, states: map[string]*ShardState{}}
	now := time.Now()
	for _, s := range shards {
		t.states[s] = &ShardState{URL: s, Up: true, Since: now}
	}
	return t
}

// Up reports whether the router should route to shard. Unknown shards are
// down.
func (t *Tracker) Up(shard string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.states[shard]
	return ok && st.Up
}

// MarkDown records a failure against shard (the passive path: a proxy
// attempt hit a transport error). No-op for unknown shards.
func (t *Tracker) MarkDown(shard string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.states[shard]
	if !ok {
		return
	}
	if st.Up {
		st.Up = false
		st.Since = time.Now()
	}
	if err != nil {
		st.LastErr = err.Error()
	}
}

// markUp transitions shard up after a successful probe.
func (t *Tracker) markUp(shard string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.states[shard]
	if !ok || st.Up {
		return
	}
	st.Up = true
	st.LastErr = ""
	st.Since = time.Now()
}

// ProbeAll checks every shard's /v1/healthz once, transitioning each up or
// down by the result. A shard is healthy when the probe returns any 2xx —
// liveness, not readiness: a degraded-but-serving shard keeps its range.
func (t *Tracker) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, shard := range t.shards() {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, t.timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, shard+"/v1/healthz", nil)
			if err != nil {
				t.MarkDown(shard, err)
				return
			}
			resp, err := t.client.Do(req)
			if err != nil {
				t.MarkDown(shard, err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode/100 == 2 {
				t.markUp(shard)
			} else {
				t.MarkDown(shard, &probeStatusError{status: resp.StatusCode})
			}
		}(shard)
	}
	wg.Wait()
}

// Start runs ProbeAll every interval until the returned stop function is
// called. The first probe fires after one interval — construction already
// assumed everything up, and the passive path covers the gap.
func (t *Tracker) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				t.ProbeAll(ctx)
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// Snapshot returns every shard's state, sorted by URL.
func (t *Tracker) Snapshot() []ShardState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ShardState, 0, len(t.states))
	for _, st := range t.states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// shards lists the tracked shard URLs.
func (t *Tracker) shards() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.states))
	for s := range t.states {
		out = append(out, s)
	}
	return out
}

// probeStatusError reports a probe that reached the shard but got a
// non-2xx answer.
type probeStatusError struct{ status int }

func (e *probeStatusError) Error() string {
	return "healthz returned HTTP " + strconv.Itoa(e.status)
}
