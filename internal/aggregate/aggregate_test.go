package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"icrowd/internal/stats"
	"icrowd/internal/task"
)

func TestMajorityVote(t *testing.T) {
	if ans, ok := MajorityVote([]task.Answer{task.Yes, task.Yes, task.No}); !ok || ans != task.Yes {
		t.Fatalf("got %v %v", ans, ok)
	}
	if ans, ok := MajorityVote([]task.Answer{task.No, task.No, task.Yes}); !ok || ans != task.No {
		t.Fatalf("got %v %v", ans, ok)
	}
	if _, ok := MajorityVote([]task.Answer{task.Yes, task.No}); ok {
		t.Fatal("tie should not be ok")
	}
	if _, ok := MajorityVote(nil); ok {
		t.Fatal("empty should not be ok")
	}
	// None answers are ignored.
	if ans, ok := MajorityVote([]task.Answer{task.None, task.Yes}); !ok || ans != task.Yes {
		t.Fatalf("None should be ignored: %v %v", ans, ok)
	}
}

func TestMajorityVoteOddNeverTies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2*rng.Intn(5) + 1 // odd
		votes := make([]task.Answer, n)
		for i := range votes {
			if rng.Float64() < 0.5 {
				votes[i] = task.Yes
			} else {
				votes[i] = task.No
			}
		}
		_, ok := MajorityVote(votes)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedVote(t *testing.T) {
	votes := []Vote{
		{"expert", task.Yes},
		{"spam1", task.No},
		{"spam2", task.No},
	}
	weights := map[string]float64{"expert": 5, "spam1": 1, "spam2": 1}
	ans, ok := WeightedVote(votes, func(w string) float64 { return weights[w] })
	if !ok || ans != task.Yes {
		t.Fatalf("expert should win: %v %v", ans, ok)
	}
	// Uniform weights reduce to majority.
	ans, ok = WeightedVote(votes, func(string) float64 { return 1 })
	if !ok || ans != task.No {
		t.Fatalf("uniform weights should follow majority: %v %v", ans, ok)
	}
	if _, ok := WeightedVote(nil, func(string) float64 { return 1 }); ok {
		t.Fatal("empty weighted vote should not be ok")
	}
}

func TestWorkerSetAccuracyUniform(t *testing.T) {
	// Uniform accuracies reduce Eq. (1) to a binomial tail.
	for _, k := range []int{1, 3, 5, 7} {
		for _, p := range []float64{0.3, 0.5, 0.8} {
			ps := make([]float64, k)
			for i := range ps {
				ps[i] = p
			}
			got, err := WorkerSetAccuracy(ps)
			if err != nil {
				t.Fatal(err)
			}
			want, err := stats.BinomialTail(k, k/2+1, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("k=%d p=%v: %v vs binomial %v", k, p, got, want)
			}
		}
	}
}

func TestWorkerSetAccuracyPaperExample(t *testing.T) {
	// Hand-computed: workers 0.9, 0.8, 0.7; majority-correct probability =
	// p1p2p3 + p1p2(1-p3) + p1(1-p2)p3 + (1-p1)p2p3.
	want := 0.9*0.8*0.7 + 0.9*0.8*0.3 + 0.9*0.2*0.7 + 0.1*0.8*0.7
	got, err := WorkerSetAccuracy([]float64{0.9, 0.8, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestWorkerSetAccuracyErrors(t *testing.T) {
	if _, err := WorkerSetAccuracy(nil); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := WorkerSetAccuracy([]float64{1.5}); err == nil {
		t.Fatal("bad probability should error")
	}
}

func TestWorkerSetAccuracyMonotone(t *testing.T) {
	// Property: raising any single worker's accuracy cannot lower the set
	// accuracy — the justification for assigning top workers (Section 4).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2*rng.Intn(3) + 3
		ps := make([]float64, k)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		before, err := WorkerSetAccuracy(ps)
		if err != nil {
			return false
		}
		i := rng.Intn(k)
		ps[i] = ps[i] + (1-ps[i])*rng.Float64()
		after, err := WorkerSetAccuracy(ps)
		if err != nil {
			return false
		}
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilisticVerify(t *testing.T) {
	votes := []Vote{
		{"good", task.Yes},
		{"bad1", task.No},
		{"bad2", task.No},
	}
	acc := map[string]float64{"good": 0.95, "bad1": 0.55, "bad2": 0.55}
	if got := ProbabilisticVerify(votes, acc, 0.5); got != task.Yes {
		t.Fatalf("high-accuracy worker should outweigh two weak ones: %v", got)
	}
	// Unknown workers use fallback; with all-equal weights majority wins.
	if got := ProbabilisticVerify(votes, nil, 0.7); got != task.No {
		t.Fatalf("uniform fallback should follow majority: %v", got)
	}
	// Exact zero score (one worker at fallback 0.5 has weight 0... use two
	// symmetric voters) falls back to majority, then to No.
	sym := []Vote{{"a", task.Yes}, {"b", task.No}}
	if got := ProbabilisticVerify(sym, map[string]float64{"a": 0.8, "b": 0.8}, 0.5); got != task.No {
		t.Fatalf("tie should fall back to No: %v", got)
	}
}

func TestDawidSkeneRecoverstruth(t *testing.T) {
	// Synthetic crowd: 3 reliable workers (0.9), 2 spammers (0.5) over 200
	// tasks. EM should (a) label most tasks correctly and (b) rank reliable
	// workers above spammers.
	rng := rand.New(rand.NewSource(42))
	nTasks := 200
	truth := make([]task.Answer, nTasks)
	for i := range truth {
		if rng.Float64() < 0.5 {
			truth[i] = task.Yes
		} else {
			truth[i] = task.No
		}
	}
	accs := map[string]float64{"r1": 0.9, "r2": 0.9, "r3": 0.85, "s1": 0.5, "s2": 0.5}
	votes := map[int][]Vote{}
	for i := 0; i < nTasks; i++ {
		for w, a := range accs {
			ans := truth[i]
			if rng.Float64() > a {
				ans = ans.Flip()
			}
			votes[i] = append(votes[i], Vote{w, ans})
		}
	}
	res, err := DawidSkene(votes, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < nTasks; i++ {
		if res.Labels[i] == truth[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(nTasks); acc < 0.9 {
		t.Fatalf("EM label accuracy %v < 0.9", acc)
	}
	if res.Accuracy("r1") <= res.Accuracy("s1") {
		t.Fatalf("EM should rank reliable above spammer: %v vs %v",
			res.Accuracy("r1"), res.Accuracy("s1"))
	}
	if res.Accuracy("unknown") != 0.5 {
		t.Fatal("unknown worker accuracy should default to 0.5")
	}
	if res.Iterations < 1 {
		t.Fatal("EM should iterate at least once")
	}
}

func TestDawidSkeneBeatsMajorityWhenSpammersOutnumber(t *testing.T) {
	// 2 strong workers vs 3 pure spammers (accuracy 0.5): simple majority
	// is dragged toward coin flips; EM learns to downweight the spammers.
	rng := rand.New(rand.NewSource(7))
	nTasks := 300
	truth := make([]task.Answer, nTasks)
	for i := range truth {
		if rng.Float64() < 0.5 {
			truth[i] = task.Yes
		} else {
			truth[i] = task.No
		}
	}
	accs := map[string]float64{"g1": 0.9, "g2": 0.9, "a1": 0.5, "a2": 0.5, "a3": 0.5}
	votes := map[int][]Vote{}
	for i := 0; i < nTasks; i++ {
		for w, a := range accs {
			ans := truth[i]
			if rng.Float64() > a {
				ans = ans.Flip()
			}
			votes[i] = append(votes[i], Vote{w, ans})
		}
	}
	res, err := DawidSkene(votes, 200, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	var emOK, mvOK int
	for i := 0; i < nTasks; i++ {
		if res.Labels[i] == truth[i] {
			emOK++
		}
		raw := make([]task.Answer, 0, 5)
		for _, v := range votes[i] {
			raw = append(raw, v.Answer)
		}
		if mv, ok := MajorityVote(raw); ok && mv == truth[i] {
			mvOK++
		}
	}
	if emOK <= mvOK {
		t.Fatalf("EM (%d) should beat MV (%d) against anti-correlated voters", emOK, mvOK)
	}
}

func TestDawidSkeneErrors(t *testing.T) {
	if _, err := DawidSkene(nil, 10, 1e-6); err == nil {
		t.Fatal("empty votes should error")
	}
	if _, err := DawidSkene(map[int][]Vote{0: {{"w", task.Yes}}}, 0, 1e-6); err == nil {
		t.Fatal("maxIter 0 should error")
	}
}

func TestDawidSkeneDeterministic(t *testing.T) {
	votes := map[int][]Vote{
		0: {{"a", task.Yes}, {"b", task.Yes}, {"c", task.No}},
		1: {{"a", task.No}, {"b", task.No}, {"c", task.No}},
		2: {{"a", task.Yes}, {"b", task.No}, {"c", task.Yes}},
	}
	r1, err := DawidSkene(votes, 50, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := DawidSkene(votes, 50, 1e-9)
	for id := range votes {
		if r1.Labels[id] != r2.Labels[id] || r1.PosteriorYes[id] != r2.PosteriorYes[id] {
			t.Fatal("DawidSkene not deterministic")
		}
	}
}
