// Package aggregate implements the answer-aggregation schemes used in the
// paper: (weighted) majority voting (Section 2.1), the worker-set accuracy
// of Eq. (1), Dawid–Skene Expectation-Maximization (the RandomEM baseline,
// refs [31, 8]), and the probabilistic-verification model of CDAS (the
// AvgAccPV baseline, ref [22]).
package aggregate

import (
	"errors"
	"math"
	"sort"

	"icrowd/internal/stats"
	"icrowd/internal/task"
)

// Vote is one worker's answer to a microtask.
type Vote struct {
	// Worker identifies the voter.
	Worker string
	// Answer is the worker's binary response.
	Answer task.Answer
}

// MajorityVote returns the consensus answer of the votes. ok is false for an
// empty slice or an exact tie (possible only for an even number of votes —
// the paper assumes odd assignment sizes k to avoid this).
func MajorityVote(votes []task.Answer) (ans task.Answer, ok bool) {
	var yes, no int
	for _, v := range votes {
		switch v {
		case task.Yes:
			yes++
		case task.No:
			no++
		}
	}
	switch {
	case yes > no:
		return task.Yes, true
	case no > yes:
		return task.No, true
	default:
		return task.None, false
	}
}

// WeightedVote aggregates votes with per-worker weights, returning the
// answer whose total weight is larger. Ties and empty inputs yield
// (None, false).
func WeightedVote(votes []Vote, weight func(worker string) float64) (task.Answer, bool) {
	var yes, no float64
	for _, v := range votes {
		w := weight(v.Worker)
		switch v.Answer {
		case task.Yes:
			yes += w
		case task.No:
			no += w
		}
	}
	switch {
	case yes > no:
		return task.Yes, true
	case no > yes:
		return task.No, true
	default:
		return task.None, false
	}
}

// WorkerSetAccuracy computes Eq. (1): the probability that strictly more
// than half of the workers (with independent accuracies ps) answer
// correctly. It evaluates the Poisson-binomial tail with an O(k^2) dynamic
// program rather than enumerating subsets.
func WorkerSetAccuracy(ps []float64) (float64, error) {
	k := len(ps)
	if k == 0 {
		return 0, errors.New("aggregate: empty worker set")
	}
	for _, p := range ps {
		if p < 0 || p > 1 {
			return 0, stats.ErrBadProbability
		}
	}
	// dp[c] = P(c correct among processed workers).
	dp := make([]float64, k+1)
	dp[0] = 1
	for i, p := range ps {
		for c := i + 1; c >= 1; c-- {
			dp[c] = dp[c]*(1-p) + dp[c-1]*p
		}
		dp[0] *= 1 - p
	}
	need := k/2 + 1 // strictly more than half
	var tail float64
	for c := need; c <= k; c++ {
		tail += dp[c]
	}
	if tail > 1 {
		tail = 1
	}
	return tail, nil
}

// ProbabilisticVerify implements the CDAS aggregation used by AvgAccPV: each
// worker votes with weight log(acc/(1-acc)) (their log odds of being
// correct), and the sign of the weighted sum decides. Workers missing from
// acc vote with the fallback accuracy. Ties fall back to simple majority,
// then to task.No.
func ProbabilisticVerify(votes []Vote, acc map[string]float64, fallback float64) task.Answer {
	var score float64
	for _, v := range votes {
		a, ok := acc[v.Worker]
		if !ok {
			a = fallback
		}
		w := stats.LogOdds(a)
		switch v.Answer {
		case task.Yes:
			score += w
		case task.No:
			score -= w
		}
	}
	switch {
	case score > 0:
		return task.Yes
	case score < 0:
		return task.No
	default:
		raw := make([]task.Answer, len(votes))
		for i, v := range votes {
			raw[i] = v.Answer
		}
		if ans, ok := MajorityVote(raw); ok {
			return ans
		}
		return task.No
	}
}

// EMResult is the output of Dawid–Skene EM.
type EMResult struct {
	// Labels is the hard label per task after the final E-step.
	Labels map[int]task.Answer
	// PosteriorYes is P(truth = YES | votes) per task.
	PosteriorYes map[int]float64
	// Sensitivity is each worker's estimated P(vote YES | truth YES).
	Sensitivity map[string]float64
	// Specificity is each worker's estimated P(vote NO | truth NO).
	Specificity map[string]float64
	// PriorYes is the estimated class prior P(truth = YES).
	PriorYes float64
	// Iterations is the number of EM rounds executed.
	Iterations int
}

// Accuracy returns a worker's average accuracy under the fitted model,
// weighting sensitivity and specificity by the class prior.
func (r *EMResult) Accuracy(worker string) float64 {
	se, ok := r.Sensitivity[worker]
	if !ok {
		return 0.5
	}
	sp := r.Specificity[worker]
	return r.PriorYes*se + (1-r.PriorYes)*sp
}

// DawidSkene runs binary Dawid–Skene EM over votes (task -> votes). It
// initializes posteriors with majority-vote fractions, alternates E/M steps
// until the max posterior change falls below tol or maxIter is reached.
func DawidSkene(votes map[int][]Vote, maxIter int, tol float64) (*EMResult, error) {
	if len(votes) == 0 {
		return nil, errors.New("aggregate: no votes")
	}
	if maxIter < 1 {
		return nil, errors.New("aggregate: maxIter must be >= 1")
	}
	// Stable iteration orders.
	taskIDs := make([]int, 0, len(votes))
	for id := range votes {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)
	workerSet := map[string]bool{}
	for _, vs := range votes {
		for _, v := range vs {
			workerSet[v.Worker] = true
		}
	}
	workers := make([]string, 0, len(workerSet))
	for w := range workerSet {
		workers = append(workers, w)
	}
	sort.Strings(workers)

	// Init: posterior = fraction of YES votes (softened).
	post := map[int]float64{}
	for _, id := range taskIDs {
		var yes, n float64
		for _, v := range votes[id] {
			n++
			if v.Answer == task.Yes {
				yes++
			}
		}
		if n == 0 {
			post[id] = 0.5
		} else {
			post[id] = (yes + 0.5) / (n + 1)
		}
	}

	sens := map[string]float64{}
	spec := map[string]float64{}
	prior := 0.5
	// MAP smoothing: Beta(2.8, 1.2) prior on sensitivity/specificity (mean
	// 0.7, strength 4). With only a handful of votes per task, unregularized
	// EM overfits — it drives some workers' rates toward extremes and then
	// propagates those errors through the posteriors (the failure mode the
	// paper observes for RandomEM in some domains). The prior keeps
	// low-evidence workers near a plausible crowd accuracy.
	const priorA, priorB = 2.8, 1.2
	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		// M-step: per-worker confusion and class prior from posteriors.
		type counts struct{ tpw, pw, tnw, nw float64 }
		cs := map[string]*counts{}
		for _, w := range workers {
			cs[w] = &counts{}
		}
		var priorSum float64
		for _, id := range taskIDs {
			p := post[id]
			priorSum += p
			for _, v := range votes[id] {
				c := cs[v.Worker]
				c.pw += p
				c.nw += 1 - p
				if v.Answer == task.Yes {
					c.tpw += p
				} else {
					c.tnw += 1 - p
				}
			}
		}
		prior = priorSum / float64(len(taskIDs))
		for _, w := range workers {
			c := cs[w]
			sens[w] = (c.tpw + priorA) / (c.pw + priorA + priorB)
			spec[w] = (c.tnw + priorA) / (c.nw + priorA + priorB)
		}
		// E-step: recompute posteriors.
		var maxDelta float64
		for _, id := range taskIDs {
			logYes := math.Log(clampProb(prior))
			logNo := math.Log(clampProb(1 - prior))
			for _, v := range votes[id] {
				se, sp := sens[v.Worker], spec[v.Worker]
				if v.Answer == task.Yes {
					logYes += math.Log(clampProb(se))
					logNo += math.Log(clampProb(1 - sp))
				} else {
					logYes += math.Log(clampProb(1 - se))
					logNo += math.Log(clampProb(sp))
				}
			}
			// Normalize in log space.
			m := math.Max(logYes, logNo)
			py := math.Exp(logYes-m) / (math.Exp(logYes-m) + math.Exp(logNo-m))
			if d := math.Abs(py - post[id]); d > maxDelta {
				maxDelta = d
			}
			post[id] = py
		}
		if maxDelta < tol {
			break
		}
	}
	if iter > maxIter {
		iter = maxIter
	}

	res := &EMResult{
		Labels:       make(map[int]task.Answer, len(taskIDs)),
		PosteriorYes: post,
		Sensitivity:  sens,
		Specificity:  spec,
		PriorYes:     prior,
		Iterations:   iter,
	}
	for _, id := range taskIDs {
		if post[id] >= 0.5 {
			res.Labels[id] = task.Yes
		} else {
			res.Labels[id] = task.No
		}
	}
	return res, nil
}

func clampProb(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
