// Package task defines the microtask model of the iCrowd reproduction and
// the synthetic dataset generators that stand in for the paper's two AMT
// datasets (YahooQA and ItemCompare) and for the Table-1 entity-resolution
// example.
//
// A microtask is a binary YES/NO question (Section 2.1). Tasks carry a text
// (token) representation used to build the microtask similarity graph of
// Section 3, an optional feature vector for Euclidean similarity (Section
// 3.3 case 2), a domain label used only by dataset generators and by the
// evaluation harness (the algorithms themselves never see domains), and a
// ground-truth answer used for qualification microtasks and for scoring.
package task

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Answer is a worker's (or the aggregated) response to a binary microtask.
type Answer int8

// Answer values. None marks "no answer yet".
const (
	None Answer = -1
	No   Answer = 0
	Yes  Answer = 1
)

// String implements fmt.Stringer.
func (a Answer) String() string {
	switch a {
	case Yes:
		return "YES"
	case No:
		return "NO"
	default:
		return "NONE"
	}
}

// Flip returns the opposite binary answer; None flips to None.
func (a Answer) Flip() Answer {
	switch a {
	case Yes:
		return No
	case No:
		return Yes
	default:
		return None
	}
}

// Task is one binary microtask.
type Task struct {
	// ID is the task's index in its Dataset; Dataset generators guarantee
	// IDs are dense in [0, len(Tasks)).
	ID int
	// Domain is the topical domain the task belongs to (e.g. "NBA").
	Domain string
	// Text is the human-readable question.
	Text string
	// Tokens is the tokenized, stop-word-free representation used for
	// textual similarity.
	Tokens []string
	// Features is an optional numeric representation (e.g. POI coordinates)
	// for Euclidean similarity.
	Features []float64
	// Truth is the ground-truth answer. The adaptive framework may only
	// look at Truth for designated qualification microtasks; the evaluation
	// harness uses it to score final results.
	Truth Answer
}

// Dataset is a named collection of microtasks over a set of domains.
type Dataset struct {
	// Name identifies the dataset (e.g. "YahooQA").
	Name string
	// Tasks holds all microtasks; Tasks[i].ID == i.
	Tasks []Task
	// Domains lists the distinct domains in stable order.
	Domains []string
}

// Len returns the number of microtasks.
func (d *Dataset) Len() int { return len(d.Tasks) }

// ByDomain returns the IDs of the tasks in the given domain, ascending.
func (d *Dataset) ByDomain(domain string) []int {
	var ids []int
	for _, t := range d.Tasks {
		if t.Domain == domain {
			ids = append(ids, t.ID)
		}
	}
	return ids
}

// DomainOf returns the domain of task id, or "" when id is out of range.
func (d *Dataset) DomainOf(id int) string {
	if id < 0 || id >= len(d.Tasks) {
		return ""
	}
	return d.Tasks[id].Domain
}

// Truths returns the ground-truth vector indexed by task ID.
func (d *Dataset) Truths() []Answer {
	out := make([]Answer, len(d.Tasks))
	for i, t := range d.Tasks {
		out[i] = t.Truth
	}
	return out
}

// Validate checks the dataset invariants the rest of the system relies on:
// dense IDs, non-empty tokens, known domains, and binary truths.
func (d *Dataset) Validate() error {
	seen := make(map[string]bool, len(d.Domains))
	for _, dom := range d.Domains {
		if seen[dom] {
			return fmt.Errorf("task: dataset %q lists domain %q twice", d.Name, dom)
		}
		seen[dom] = true
	}
	for i, t := range d.Tasks {
		if t.ID != i {
			return fmt.Errorf("task: dataset %q task at index %d has ID %d", d.Name, i, t.ID)
		}
		if len(t.Tokens) == 0 && len(t.Features) == 0 {
			return fmt.Errorf("task: dataset %q task %d has neither tokens nor features", d.Name, i)
		}
		if !seen[t.Domain] {
			return fmt.Errorf("task: dataset %q task %d has unlisted domain %q", d.Name, i, t.Domain)
		}
		if t.Truth != Yes && t.Truth != No {
			return fmt.Errorf("task: dataset %q task %d has non-binary truth %d", d.Name, i, t.Truth)
		}
	}
	return nil
}

// Stats summarizes a dataset for the Table-4 experiment.
type Stats struct {
	Name      string
	Tasks     int
	Domains   int
	PerDomain map[string]int
}

// Summarize computes dataset statistics (Table 4 rows).
func (d *Dataset) Summarize() Stats {
	s := Stats{Name: d.Name, Tasks: len(d.Tasks), Domains: len(d.Domains), PerDomain: map[string]int{}}
	for _, t := range d.Tasks {
		s.PerDomain[t.Domain]++
	}
	return s
}

// tokenize lowercases and splits on whitespace; generator-side convenience.
func tokenize(text string) []string {
	return strings.Fields(strings.ToLower(text))
}

// dedupe returns tokens with duplicates removed, preserving first occurrence.
func dedupe(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	out := tokens[:0:0]
	for _, tok := range tokens {
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// sortedDomains returns the keys of m in sorted order.
func sortedDomains(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// synthesize builds a dataset from per-domain vocabularies. Each task draws
// tokensPerTask tokens from its domain vocabulary (Zipf-ish: earlier
// vocabulary words are more likely, so domains develop high-frequency
// "anchor" terms exactly like "iphone"/"ipod"/"ipad" anchor the Table-1
// clusters) plus up to sharedPerTask tokens from a global shared vocabulary.
func synthesize(name string, vocab map[string][]string, shared []string, perDomain map[string]int, tokensPerTask, sharedPerTask int, rng *rand.Rand) *Dataset {
	domains := sortedDomains(vocab)
	ds := &Dataset{Name: name, Domains: domains}
	for _, dom := range domains {
		words := vocab[dom]
		for i := 0; i < perDomain[dom]; i++ {
			toks := make([]string, 0, tokensPerTask+sharedPerTask)
			// Domain anchor word always present so intra-domain Jaccard
			// similarity has a floor.
			toks = append(toks, words[0])
			for len(toks) < tokensPerTask {
				// Zipf-ish pick: square the uniform to favor early words.
				u := rng.Float64()
				idx := int(u * u * float64(len(words)))
				if idx >= len(words) {
					idx = len(words) - 1
				}
				toks = append(toks, words[idx])
			}
			for j := 0; j < sharedPerTask; j++ {
				if rng.Float64() < 0.5 {
					toks = append(toks, shared[rng.Intn(len(shared))])
				}
			}
			toks = dedupe(toks)
			truth := No
			if rng.Float64() < 0.5 {
				truth = Yes
			}
			ds.Tasks = append(ds.Tasks, Task{
				ID:     len(ds.Tasks),
				Domain: dom,
				Text:   strings.Join(toks, " "),
				Tokens: toks,
				Truth:  truth,
			})
		}
	}
	return ds
}
