package task

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAnswerString(t *testing.T) {
	if Yes.String() != "YES" || No.String() != "NO" || None.String() != "NONE" {
		t.Fatalf("Answer.String mismatch: %v %v %v", Yes, No, None)
	}
}

func TestAnswerFlip(t *testing.T) {
	if Yes.Flip() != No || No.Flip() != Yes || None.Flip() != None {
		t.Fatal("Flip mismatch")
	}
	// Property: flipping twice is the identity.
	f := func(raw int8) bool {
		a := Answer(raw % 2) // Yes or No
		if a < 0 {
			a = -a
		}
		return a.Flip().Flip() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateYahooQAShape(t *testing.T) {
	ds := GenerateYahooQA(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != YahooQATasks {
		t.Fatalf("YahooQA has %d tasks, want %d", ds.Len(), YahooQATasks)
	}
	if len(ds.Domains) != 6 {
		t.Fatalf("YahooQA has %d domains, want 6", len(ds.Domains))
	}
	st := ds.Summarize()
	total := 0
	for dom, n := range st.PerDomain {
		if n < 18 {
			t.Fatalf("domain %s has only %d tasks", dom, n)
		}
		total += n
	}
	if total != YahooQATasks {
		t.Fatalf("per-domain sums to %d, want %d", total, YahooQATasks)
	}
	for code := range st.PerDomain {
		if _, ok := YahooQADomainNames[code]; !ok {
			t.Fatalf("unknown domain code %q", code)
		}
	}
}

func TestGenerateItemCompareShape(t *testing.T) {
	ds := GenerateItemCompare(1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != ItemCompareTasks {
		t.Fatalf("ItemCompare has %d tasks, want %d", ds.Len(), ItemCompareTasks)
	}
	st := ds.Summarize()
	if st.Domains != 4 {
		t.Fatalf("ItemCompare has %d domains, want 4", st.Domains)
	}
	for dom, n := range st.PerDomain {
		if n != ItemComparePerDomain {
			t.Fatalf("domain %s has %d tasks, want %d", dom, n, ItemComparePerDomain)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := GenerateYahooQA(42), GenerateYahooQA(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateYahooQA not deterministic for equal seeds")
	}
	c := GenerateYahooQA(43)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i].Text != c.Tasks[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical task texts")
	}
}

func TestProductMatching(t *testing.T) {
	ds := ProductMatching()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 12 {
		t.Fatalf("Table 1 has 12 microtasks, got %d", ds.Len())
	}
	// Spot-check the paper's token sets.
	t2 := ds.Tasks[1].Tokens
	want := []string{"ipod", "touch", "32gb", "wifi", "headphone"}
	if !reflect.DeepEqual(t2, want) {
		t.Fatalf("t2 tokens = %v, want %v", t2, want)
	}
	// The three matching pairs per the paper's narrative.
	for _, id := range []int{5, 10, 11} {
		if ds.Tasks[id].Truth != Yes {
			t.Fatalf("t%d should be a match", id+1)
		}
	}
	if ds.Tasks[0].Truth != No {
		t.Fatal("t1 should not be a match")
	}
}

func TestByDomainAndDomainOf(t *testing.T) {
	ds := ProductMatching()
	ids := ds.ByDomain("iPod")
	if !reflect.DeepEqual(ids, []int{1, 6, 7, 8}) {
		t.Fatalf("iPod tasks = %v", ids)
	}
	if ds.DomainOf(0) != "iPhone" || ds.DomainOf(2) != "iPad" {
		t.Fatal("DomainOf mismatch")
	}
	if ds.DomainOf(-1) != "" || ds.DomainOf(99) != "" {
		t.Fatal("DomainOf out of range should be empty")
	}
}

func TestTruths(t *testing.T) {
	ds := ProductMatching()
	tr := ds.Truths()
	if len(tr) != ds.Len() {
		t.Fatalf("Truths length %d, want %d", len(tr), ds.Len())
	}
	for i, a := range tr {
		if a != ds.Tasks[i].Truth {
			t.Fatalf("Truths[%d] mismatch", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Dataset { return ProductMatching() }

	ds := fresh()
	ds.Tasks[3].ID = 7
	if ds.Validate() == nil {
		t.Fatal("Validate missed non-dense ID")
	}

	ds = fresh()
	ds.Tasks[0].Tokens = nil
	if ds.Validate() == nil {
		t.Fatal("Validate missed empty tokens")
	}

	ds = fresh()
	ds.Tasks[0].Domain = "Zune"
	if ds.Validate() == nil {
		t.Fatal("Validate missed unlisted domain")
	}

	ds = fresh()
	ds.Tasks[0].Truth = None
	if ds.Validate() == nil {
		t.Fatal("Validate missed non-binary truth")
	}

	ds = fresh()
	ds.Domains = append(ds.Domains, "iPad")
	if ds.Validate() == nil {
		t.Fatal("Validate missed duplicate domain")
	}
}

func TestGeneratePOI(t *testing.T) {
	ds := GeneratePOI(5, 7)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Fatalf("POI has %d tasks, want 20", ds.Len())
	}
	for _, tk := range ds.Tasks {
		if len(tk.Features) != 2 {
			t.Fatalf("task %d has %d features, want 2", tk.ID, len(tk.Features))
		}
	}
}

func TestGenerateUniform(t *testing.T) {
	ds := GenerateUniform(25, []string{"A", "B", "C"}, 3)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 25 {
		t.Fatalf("Uniform has %d tasks, want 25", ds.Len())
	}
	st := ds.Summarize()
	if st.PerDomain["A"] != 9 || st.PerDomain["B"] != 8 || st.PerDomain["C"] != 8 {
		t.Fatalf("round-robin split wrong: %v", st.PerDomain)
	}
	// Empty domain list falls back to a single default domain.
	ds0 := GenerateUniform(4, nil, 3)
	if err := ds0.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds0.Domains) != 1 {
		t.Fatalf("fallback should have 1 domain, got %d", len(ds0.Domains))
	}
}

func TestTokensStayInsideDomainVocabulary(t *testing.T) {
	// Property: every non-shared token of a YahooQA task belongs to its own
	// domain vocabulary — domains are topically separated, which is what
	// makes the similarity graph cluster (Section 3).
	ds := GenerateYahooQA(9)
	shared := map[string]bool{}
	for _, w := range sharedVocab {
		shared[w] = true
	}
	vocabSet := map[string]map[string]bool{}
	for dom, words := range yahooVocab {
		vocabSet[dom] = map[string]bool{}
		for _, w := range words {
			vocabSet[dom][w] = true
		}
	}
	for _, tk := range ds.Tasks {
		for _, tok := range tk.Tokens {
			if shared[tok] {
				continue
			}
			if !vocabSet[tk.Domain][tok] {
				t.Fatalf("task %d (domain %s) has foreign token %q", tk.ID, tk.Domain, tok)
			}
		}
	}
}

func TestDedupe(t *testing.T) {
	got := dedupe([]string{"a", "b", "a", "c", "b"})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("dedupe = %v", got)
	}
}
