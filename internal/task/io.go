package task

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// jsonDataset is the stable on-disk representation of a Dataset.
type jsonDataset struct {
	Name    string     `json:"name"`
	Domains []string   `json:"domains"`
	Tasks   []jsonTask `json:"tasks"`
}

type jsonTask struct {
	ID       int       `json:"id"`
	Domain   string    `json:"domain"`
	Text     string    `json:"text"`
	Tokens   []string  `json:"tokens,omitempty"`
	Features []float64 `json:"features,omitempty"`
	// Truth is "YES" or "NO".
	Truth string `json:"truth"`
}

// WriteJSON serializes the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	out := jsonDataset{Name: d.Name, Domains: d.Domains}
	for _, t := range d.Tasks {
		out.Tasks = append(out.Tasks, jsonTask{
			ID:       t.ID,
			Domain:   t.Domain,
			Text:     t.Text,
			Tokens:   t.Tokens,
			Features: t.Features,
			Truth:    t.Truth.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveJSON writes the dataset to a file.
func (d *Dataset) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteJSON(f)
}

// ReadJSON parses a dataset from JSON. Tasks without explicit tokens get
// them derived from the text (lowercased whitespace split); the dataset is
// validated before returning.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("task: parsing dataset: %w", err)
	}
	if in.Name == "" {
		return nil, errors.New("task: dataset has no name")
	}
	ds := &Dataset{Name: in.Name, Domains: in.Domains}
	for _, jt := range in.Tasks {
		var truth Answer
		switch jt.Truth {
		case "YES":
			truth = Yes
		case "NO":
			truth = No
		default:
			return nil, fmt.Errorf("task: task %d has truth %q, want YES or NO", jt.ID, jt.Truth)
		}
		tokens := jt.Tokens
		if len(tokens) == 0 && jt.Text != "" {
			tokens = tokenize(jt.Text)
		}
		ds.Tasks = append(ds.Tasks, Task{
			ID:       jt.ID,
			Domain:   jt.Domain,
			Text:     jt.Text,
			Tokens:   tokens,
			Features: jt.Features,
			Truth:    truth,
		})
	}
	// Accept datasets that omit the domain list by deriving it.
	if len(ds.Domains) == 0 {
		seen := map[string]bool{}
		for _, t := range ds.Tasks {
			if !seen[t.Domain] {
				seen[t.Domain] = true
				ds.Domains = append(ds.Domains, t.Domain)
			}
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadJSON reads a dataset from a file.
func LoadJSON(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
