package task

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := GenerateItemCompare(3)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("round trip changed the dataset")
	}
}

func TestJSONRoundTripWithFeatures(t *testing.T) {
	orig := GeneratePOI(3, 1)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("round trip changed the POI dataset")
	}
}

func TestSaveLoadJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.json")
	orig := ProductMatching()
	if err := orig.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("file round trip changed the dataset")
	}
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestReadJSONDerivesTokensAndDomains(t *testing.T) {
	in := `{
		"name": "custom",
		"tasks": [
			{"id": 0, "domain": "A", "text": "Compare Apples And Oranges", "truth": "YES"},
			{"id": 1, "domain": "B", "text": "compare cars", "truth": "NO"}
		]
	}`
	ds, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Tasks[0].Tokens, []string{"compare", "apples", "and", "oranges"}) {
		t.Fatalf("derived tokens = %v", ds.Tasks[0].Tokens)
	}
	if !reflect.DeepEqual(ds.Domains, []string{"A", "B"}) {
		t.Fatalf("derived domains = %v", ds.Domains)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"no name", `{"tasks":[{"id":0,"domain":"A","text":"x","truth":"YES"}]}`},
		{"bad truth", `{"name":"x","tasks":[{"id":0,"domain":"A","text":"x","truth":"MAYBE"}]}`},
		{"unknown field", `{"name":"x","bogus":1,"tasks":[]}`},
		{"non-dense ids", `{"name":"x","tasks":[{"id":5,"domain":"A","text":"x","truth":"YES"}]}`},
		{"no tokens or features", `{"name":"x","tasks":[{"id":0,"domain":"A","truth":"YES"}]}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}
