package task

import (
	"fmt"
	"math/rand"
	"strings"
)

// Paper dataset shapes (Table 4).
const (
	// YahooQATasks is the number of microtasks in the YahooQA dataset.
	YahooQATasks = 110
	// ItemCompareTasks is the number of microtasks in ItemCompare.
	ItemCompareTasks = 360
	// ItemComparePerDomain is the number of tasks per ItemCompare domain.
	ItemComparePerDomain = 90
)

// YahooQA domain codes as used in the paper's figures.
var yahooDomains = []string{"BA", "DF", "FF", "HS", "HT", "PH"}

// YahooQADomainNames maps the paper's two-letter YahooQA domain codes to
// their long names.
var YahooQADomainNames = map[string]string{
	"FF": "2006 FIFA World Cup",
	"BA": "Books & Authors",
	"DF": "Diet & Fitness",
	"HS": "Home Schooling",
	"HT": "Hunting",
	"PH": "Philosophy",
}

var yahooVocab = map[string][]string{
	"FF": {"fifa", "worldcup", "2006", "goal", "match", "germany", "italy",
		"france", "zidane", "penalty", "striker", "referee", "group",
		"final", "keeper", "offside", "brazil", "ronaldo", "stadium", "coach"},
	"BA": {"book", "author", "novel", "writer", "fiction", "chapter",
		"publisher", "poetry", "character", "plot", "literature", "edition",
		"paperback", "bestseller", "memoir", "series", "trilogy", "prose",
		"essay", "biography"},
	"DF": {"diet", "fitness", "calories", "protein", "workout", "weight",
		"exercise", "carbs", "muscle", "cardio", "nutrition", "vitamin",
		"metabolism", "fat", "gym", "yoga", "running", "meal", "sugar",
		"hydration"},
	"HS": {"homeschool", "curriculum", "teaching", "children", "lesson",
		"grade", "parent", "math", "reading", "schedule", "textbook",
		"education", "learning", "tutor", "subject", "exam", "worksheet",
		"kindergarten", "socialization", "science"},
	"HT": {"hunting", "deer", "rifle", "season", "bow", "camouflage",
		"tracking", "blind", "scope", "ammo", "turkey", "elk", "duck",
		"license", "stand", "scent", "caliber", "shotgun", "trail", "decoy"},
	"PH": {"philosophy", "ethics", "kant", "plato", "metaphysics", "logic",
		"existence", "socrates", "morality", "epistemology", "nietzsche",
		"reason", "truth", "consciousness", "aristotle", "virtue", "dualism",
		"stoicism", "free", "will"},
}

// ItemCompare domains.
var itemDomains = []string{"Auto", "Country", "Food", "NBA"}

var itemVocab = map[string][]string{
	"Food": {"food", "calories", "chocolate", "honey", "cheese", "butter",
		"bread", "rice", "pasta", "apple", "banana", "sugar", "almond",
		"yogurt", "beef", "chicken", "salmon", "avocado", "potato", "oats"},
	"NBA": {"nba", "team", "champions", "lakers", "celtics", "bucks",
		"bulls", "spurs", "warriors", "pistons", "rockets", "heat", "knicks",
		"jazz", "suns", "nets", "sixers", "mavericks", "clippers", "title"},
	"Auto": {"car", "fuel", "efficient", "toyota", "camry", "lexus", "honda",
		"accord", "civic", "sedan", "hybrid", "mpg", "ford", "fusion",
		"nissan", "altima", "engine", "mazda", "subaru", "chevrolet"},
	"Country": {"country", "area", "brazil", "canada", "russia", "china",
		"india", "australia", "argentina", "kazakhstan", "algeria",
		"population", "territory", "border", "mexico", "indonesia", "sudan",
		"libya", "iran", "mongolia"},
}

var sharedVocab = []string{"which", "more", "better", "compare", "verify",
	"question", "answer", "best", "two", "one"}

// GenerateYahooQA builds a synthetic dataset with the shape of the paper's
// YahooQA dataset: 110 question-answer evaluation microtasks over six
// domains (Table 4). Determinism: identical seeds produce identical
// datasets.
func GenerateYahooQA(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	perDomain := map[string]int{}
	base := YahooQATasks / len(yahooDomains)
	rem := YahooQATasks % len(yahooDomains)
	for i, dom := range yahooDomains {
		perDomain[dom] = base
		if i < rem {
			perDomain[dom]++
		}
	}
	ds := synthesize("YahooQA", yahooVocab, sharedVocab, perDomain, 8, 2, rng)
	return ds
}

// GenerateItemCompare builds a synthetic dataset with the shape of the
// paper's ItemCompare dataset: 360 comparison microtasks, 90 in each of the
// Food, NBA, Auto and Country domains (Table 4).
func GenerateItemCompare(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	perDomain := map[string]int{}
	for _, dom := range itemDomains {
		perDomain[dom] = ItemComparePerDomain
	}
	return synthesize("ItemCompare", itemVocab, sharedVocab, perDomain, 8, 2, rng)
}

// ProductMatching returns the twelve entity-resolution microtasks of the
// paper's Table 1, with their exact token sets. Ground truths follow the
// paper's narrative: "iphone 4" = "iphone four" (t6), "ipad 4" = "ipad with
// retina display" (t11), and "new ipad" = "ipad 3" (t12); all other pairs
// are distinct products.
func ProductMatching() *Dataset {
	rows := []struct {
		text   string
		domain string
		truth  Answer
	}{
		{"iphone 4 wifi 32gb four 3g black", "iPhone", No},          // t1
		{"ipod touch 32gb wifi headphone", "iPod", No},              // t2
		{"ipad 3 wifi 32gb black new cover white", "iPad", No},      // t3
		{"iphone four wifi 16gb 3g", "iPhone", No},                  // t4
		{"iphone 4 case black wifi 32gb", "iPhone", No},             // t5
		{"iphone 4 wifi 32gb four", "iPhone", Yes},                  // t6
		{"ipod touch 32gb wifi case black", "iPod", No},             // t7
		{"ipod touch nano headphone", "iPod", No},                   // t8
		{"ipod touch wifi nano headphone", "iPod", No},              // t9
		{"ipad 3 wifi 32gb black iphone 4 cover white", "iPad", No}, // t10
		{"ipad 4 wifi 16gb retina display", "iPad", Yes},            // t11
		{"ipad 3 cover white new", "iPad", Yes},                     // t12
	}
	ds := &Dataset{Name: "ProductMatching", Domains: []string{"iPad", "iPhone", "iPod"}}
	for i, r := range rows {
		toks := tokenize(r.text)
		ds.Tasks = append(ds.Tasks, Task{
			ID:     i,
			Domain: r.domain,
			Text:   fmt.Sprintf("t%d: are these the same product? {%s}", i+1, r.text),
			Tokens: toks,
			Truth:  r.truth,
		})
	}
	return ds
}

// GeneratePOI builds a dataset of place-name verification microtasks whose
// similarity is geometric (Section 3.3 case 2): each task carries a 2-D
// coordinate, and tasks cluster around per-domain city centers.
func GeneratePOI(nPerCity int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := []struct {
		name string
		x, y float64
	}{
		{"Downtown", 0, 0},
		{"Harbor", 10, 0},
		{"Uptown", 0, 10},
		{"Airport", 10, 10},
	}
	ds := &Dataset{Name: "POI"}
	for _, c := range centers {
		ds.Domains = append(ds.Domains, c.name)
		for i := 0; i < nPerCity; i++ {
			x := c.x + rng.NormFloat64()
			y := c.y + rng.NormFloat64()
			truth := No
			if rng.Float64() < 0.5 {
				truth = Yes
			}
			name := fmt.Sprintf("%s poi %d", strings.ToLower(c.name), i)
			ds.Tasks = append(ds.Tasks, Task{
				ID:       len(ds.Tasks),
				Domain:   c.name,
				Text:     "verify place name for " + name,
				Tokens:   tokenize(name),
				Features: []float64{x, y},
				Truth:    truth,
			})
		}
	}
	return ds
}

// GenerateUniform builds n tasks spread round-robin over the given domains
// with small per-domain vocabularies. It is used by scalability experiments
// and property tests that need arbitrary sizes.
func GenerateUniform(n int, domains []string, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	if len(domains) == 0 {
		domains = []string{"D0"}
	}
	vocab := map[string][]string{}
	for d, dom := range domains {
		words := make([]string, 12)
		for i := range words {
			words[i] = fmt.Sprintf("%s_w%d", strings.ToLower(dom), i)
		}
		_ = d
		vocab[dom] = words
	}
	perDomain := map[string]int{}
	for i := 0; i < n; i++ {
		perDomain[domains[i%len(domains)]]++
	}
	ds := synthesize(fmt.Sprintf("Uniform-%d", n), vocab, sharedVocab, perDomain, 6, 1, rng)
	return ds
}
