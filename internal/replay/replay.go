// Package replay implements the paper's evaluation methodology (Section
// 6.1): first collect a fixed pool of redundant answers from the crowd
// ("we set the Number of Assignments per HIT to a large number (10) to
// collect enough answers"), then run every task-assignment approach over
// the *same* collected answers — an approach may only assign a microtask to
// a worker whose answer for it was collected, and the submitted answer is
// that collected one.
//
// Replay is what gives assignment strategies their bite: with only ~10
// eligible workers per microtask, choosing *which* k of them to use is a
// real decision, and the comparison across approaches is free of answer-
// sampling noise because everyone consumes the same answer pool.
package replay

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"icrowd/internal/core"
	"icrowd/internal/sim"
	"icrowd/internal/task"
)

// Pool is a fixed collection of worker answers, perTask answers for every
// microtask.
type Pool struct {
	ds      *task.Dataset
	perTask int
	// answers[taskID][workerID] = collected answer.
	answers []map[string]task.Answer
	// byWorker[workerID] = sorted tasks the worker answered.
	byWorker map[string][]int
	profiles map[string]*sim.Profile
}

// Collect gathers perTask answers for every microtask from the simulated
// crowd. Workers are drawn per task without replacement, weighted by their
// request rates (busy workers answer more HITs, matching the Figure-15
// distribution). Every answer is a Bernoulli draw from the worker's latent
// domain accuracy.
func Collect(ds *task.Dataset, profiles []sim.Profile, perTask int, seed int64) (*Pool, error) {
	if perTask < 1 {
		return nil, errors.New("replay: perTask must be >= 1")
	}
	if perTask > len(profiles) {
		perTask = len(profiles)
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Pool{
		ds:       ds,
		perTask:  perTask,
		answers:  make([]map[string]task.Answer, ds.Len()),
		byWorker: map[string][]int{},
		profiles: map[string]*sim.Profile{},
	}
	for i := range profiles {
		p.profiles[profiles[i].ID] = &profiles[i]
	}
	for tid := 0; tid < ds.Len(); tid++ {
		chosen := weightedSampleWithoutReplacement(profiles, perTask, rng)
		row := make(map[string]task.Answer, perTask)
		for _, prof := range chosen {
			row[prof.ID] = sim.Answer(prof, &ds.Tasks[tid], rng)
			p.byWorker[prof.ID] = append(p.byWorker[prof.ID], tid)
		}
		p.answers[tid] = row
	}
	for _, tasks := range p.byWorker {
		sort.Ints(tasks)
	}
	return p, nil
}

// weightedSampleWithoutReplacement draws n distinct profiles with
// probability proportional to request rate.
func weightedSampleWithoutReplacement(profiles []sim.Profile, n int, rng *rand.Rand) []*sim.Profile {
	type cand struct {
		p *sim.Profile
		w float64
	}
	cands := make([]cand, len(profiles))
	var total float64
	for i := range profiles {
		w := profiles[i].RequestRate
		if w <= 0 {
			w = 1
		}
		cands[i] = cand{&profiles[i], w}
		total += w
	}
	out := make([]*sim.Profile, 0, n)
	for len(out) < n && len(cands) > 0 {
		pick := rng.Float64() * total
		idx := len(cands) - 1
		for i, c := range cands {
			pick -= c.w
			if pick < 0 {
				idx = i
				break
			}
		}
		out = append(out, cands[idx].p)
		total -= cands[idx].w
		cands = append(cands[:idx], cands[idx+1:]...)
	}
	return out
}

// Dataset returns the pool's dataset.
func (p *Pool) Dataset() *task.Dataset { return p.ds }

// PerTask returns the number of collected answers per microtask.
func (p *Pool) PerTask() int { return p.perTask }

// Has reports whether the worker's answer for taskID was collected.
func (p *Pool) Has(worker string, taskID int) bool {
	if taskID < 0 || taskID >= len(p.answers) {
		return false
	}
	_, ok := p.answers[taskID][worker]
	return ok
}

// Answer returns the collected answer of worker on taskID.
func (p *Pool) Answer(worker string, taskID int) (task.Answer, bool) {
	if taskID < 0 || taskID >= len(p.answers) {
		return task.None, false
	}
	a, ok := p.answers[taskID][worker]
	return a, ok
}

// Workers returns the IDs of workers with at least one collected answer,
// sorted.
func (p *Pool) Workers() []string {
	out := make([]string, 0, len(p.byWorker))
	for id := range p.byWorker {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TasksOf returns the tasks the worker answered during collection.
func (p *Pool) TasksOf(worker string) []int {
	return append([]int(nil), p.byWorker[worker]...)
}

// Eligible returns the eligibility predicate replayed strategies must obey.
func (p *Pool) Eligible() func(worker string, taskID int) bool {
	return p.Has
}

// Run replays a strategy over the pool: workers request in rate-weighted
// random order; the strategy assigns microtasks; submitted answers come
// from the pool (qualification microtasks fall back to a fresh draw from
// the worker's latent profile when no answer was collected — the warm-up
// assigns them to every new worker regardless of the HITs they accepted).
// Run scores the strategy's aggregated results over all microtasks.
func Run(s core.Strategy, p *Pool, opts sim.RunOptions) (*sim.Result, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200 * p.ds.Len()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	workers := p.Workers()
	if len(workers) == 0 {
		return nil, errors.New("replay: empty pool")
	}
	res := &sim.Result{
		Strategy:     s.Name(),
		Assignments:  map[string]int{},
		WorkerDomain: map[string]map[string]sim.DomainStat{},
	}
	excluded := make(map[int]bool, len(opts.ExcludeTasks))
	for _, t := range opts.ExcludeTasks {
		excluded[t] = true
	}
	// retired[w] counts consecutive empty requests; workers past the limit
	// stop requesting (their pool is exhausted or they were rejected).
	retired := map[string]int{}
	const retireAfter = 3
	mx := sim.NewRunMetrics(opts.Metrics, "replay", s.Name())
	every := opts.MetricsEvery
	if every <= 0 {
		every = 200
	}
	totalAssign := 0
	step := 0
	for ; step < opts.MaxSteps && !s.Done(); step++ {
		if step%every == 0 {
			mx.Sample(step, totalAssign, sim.ScoreAccuracy(s, p.ds, excluded))
		}
		var active []string
		var totalRate float64
		for _, id := range workers {
			if retired[id] >= retireAfter {
				continue
			}
			active = append(active, id)
			totalRate += rate(p.profiles[id])
		}
		if len(active) == 0 {
			break
		}
		pick := rng.Float64() * totalRate
		w := active[len(active)-1]
		for _, id := range active {
			pick -= rate(p.profiles[id])
			if pick < 0 {
				w = id
				break
			}
		}
		tid, ok := s.RequestTask(w)
		if !ok {
			retired[w]++
			continue
		}
		retired[w] = 0
		ans, collected := p.Answer(w, tid)
		if !collected {
			// Qualification microtasks are assigned outside the collected
			// HITs; draw the answer fresh from the latent profile.
			ans = sim.Answer(p.profiles[w], &p.ds.Tasks[tid], rng)
		}
		if err := s.SubmitAnswer(w, tid, ans); err != nil {
			return nil, fmt.Errorf("replay: submit by %s on %d: %w", w, tid, err)
		}
		if !excluded[tid] {
			totalAssign++
			res.Assignments[w]++
			wd, ok := res.WorkerDomain[w]
			if !ok {
				wd = map[string]sim.DomainStat{}
				res.WorkerDomain[w] = wd
			}
			dom := p.ds.Tasks[tid].Domain
			st := wd[dom]
			st.Total++
			if ans == p.ds.Tasks[tid].Truth {
				st.Correct++
			}
			wd[dom] = st
		}
	}
	res.Steps = step
	res.Completed = s.Done()

	results := s.Results()
	correct, scored := 0, 0
	domCorrect := map[string]int{}
	domTotal := map[string]int{}
	for i := range p.ds.Tasks {
		if excluded[i] {
			continue
		}
		scored++
		tk := &p.ds.Tasks[i]
		domTotal[tk.Domain]++
		if results[i] == tk.Truth {
			correct++
			domCorrect[tk.Domain]++
		}
	}
	if scored > 0 {
		res.Accuracy = float64(correct) / float64(scored)
	}
	res.PerDomain = map[string]float64{}
	for _, dom := range p.ds.Domains {
		if domTotal[dom] > 0 {
			res.PerDomain[dom] = float64(domCorrect[dom]) / float64(domTotal[dom])
		}
	}
	mx.Sample(step, totalAssign, res.Accuracy)
	return res, nil
}

func rate(p *sim.Profile) float64 {
	if p == nil || p.RequestRate <= 0 {
		return 1
	}
	return p.RequestRate
}
