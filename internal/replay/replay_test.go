package replay

import (
	"testing"

	"icrowd/internal/baseline"
	"icrowd/internal/core"
	"icrowd/internal/sim"
	"icrowd/internal/task"
)

func testPool(t *testing.T) (*task.Dataset, []sim.Profile, *Pool) {
	t.Helper()
	ds := task.GenerateUniform(40, []string{"A", "B"}, 1)
	profiles := sim.GeneratePool(ds, 12, sim.DefaultPoolOptions(), 2)
	p, err := Collect(ds, profiles, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds, profiles, p
}

func TestCollectShape(t *testing.T) {
	ds, profiles, p := testPool(t)
	if p.Dataset() != ds || p.PerTask() != 5 {
		t.Fatal("accessors mismatch")
	}
	// Every task has exactly perTask distinct answers.
	for tid := 0; tid < ds.Len(); tid++ {
		n := 0
		for i := range profiles {
			if p.Has(profiles[i].ID, tid) {
				n++
			}
		}
		if n != 5 {
			t.Fatalf("task %d has %d answers, want 5", tid, n)
		}
	}
	// byWorker inverse is consistent.
	total := 0
	for _, w := range p.Workers() {
		for _, tid := range p.TasksOf(w) {
			if !p.Has(w, tid) {
				t.Fatal("TasksOf inconsistent with Has")
			}
			total++
		}
	}
	if total != 5*ds.Len() {
		t.Fatalf("total answers %d, want %d", total, 5*ds.Len())
	}
	// Out-of-range queries are safe.
	if p.Has("x", -1) || p.Has("x", 9999) {
		t.Fatal("out-of-range Has should be false")
	}
	if _, ok := p.Answer("x", -1); ok {
		t.Fatal("out-of-range Answer should not be ok")
	}
}

func TestCollectValidation(t *testing.T) {
	ds := task.GenerateUniform(10, nil, 1)
	profiles := sim.GeneratePool(ds, 4, sim.DefaultPoolOptions(), 2)
	if _, err := Collect(ds, profiles, 0, 1); err == nil {
		t.Fatal("perTask=0 should error")
	}
	// perTask above pool size clamps.
	p, err := Collect(ds, profiles, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerTask() != 4 {
		t.Fatalf("clamped perTask = %d", p.PerTask())
	}
}

func TestCollectDeterministic(t *testing.T) {
	ds := task.GenerateUniform(20, nil, 1)
	profiles := sim.GeneratePool(ds, 6, sim.DefaultPoolOptions(), 2)
	a, _ := Collect(ds, profiles, 3, 9)
	b, _ := Collect(ds, profiles, 3, 9)
	for tid := 0; tid < ds.Len(); tid++ {
		for i := range profiles {
			av, aok := a.Answer(profiles[i].ID, tid)
			bv, bok := b.Answer(profiles[i].ID, tid)
			if aok != bok || av != bv {
				t.Fatal("Collect not deterministic")
			}
		}
	}
}

func TestRateSkewShowsUpInCollection(t *testing.T) {
	ds := task.GenerateUniform(100, nil, 1)
	profiles := sim.GeneratePool(ds, 20, sim.DefaultPoolOptions(), 2)
	p, err := Collect(ds, profiles, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The highest-rate worker should answer far more tasks than the lowest.
	var hiW, loW string
	var hiR, loR float64 = 0, 2
	for i := range profiles {
		if r := profiles[i].RequestRate; r > hiR {
			hiR, hiW = r, profiles[i].ID
		} else if r < loR {
			loR, loW = r, profiles[i].ID
		}
	}
	if len(p.TasksOf(hiW)) <= len(p.TasksOf(loW)) {
		t.Fatalf("rate skew not reflected: %s=%d vs %s=%d",
			hiW, len(p.TasksOf(hiW)), loW, len(p.TasksOf(loW)))
	}
}

func TestReplayRandomMVConsumesOnlyPoolAnswers(t *testing.T) {
	ds, _, p := testPool(t)
	st, err := baseline.NewRandomMV(ds, 3, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetEligible(p.Eligible())
	res, err := Run(st, p, sim.RunOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("replay did not complete (steps %d)", res.Steps)
	}
	// Every recorded vote must match the collected answer.
	for tid, votes := range st.Job().AllVotes() {
		for _, v := range votes {
			collected, ok := p.Answer(v.Worker, tid)
			if !ok {
				t.Fatalf("vote by %s on %d was never collected", v.Worker, tid)
			}
			if collected != v.Answer {
				t.Fatalf("vote differs from collected answer")
			}
		}
	}
}

func TestReplayICrowdEndToEnd(t *testing.T) {
	ds, _, p := testPool(t)
	basis, err := core.BuildBasis(ds, core.DefaultBasisConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Q = 4
	cfg.Eligible = p.Eligible()
	ic, err := core.New(ds, basis, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ic, p, sim.RunOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy <= 0.3 {
		t.Fatalf("replay accuracy %v implausible", res.Accuracy)
	}
	// Non-qualification votes must respect eligibility.
	qual := map[int]bool{}
	for _, q := range ic.QualificationTasks() {
		qual[q] = true
	}
	for tid, votes := range ic.Job().AllVotes() {
		if qual[tid] {
			continue
		}
		for _, v := range votes {
			if !p.Has(v.Worker, tid) {
				t.Fatalf("ineligible vote by %s on %d", v.Worker, tid)
			}
		}
	}
}

func TestReplayEmptyPool(t *testing.T) {
	ds := task.GenerateUniform(5, nil, 1)
	st, _ := baseline.NewRandomMV(ds, 3, nil, 1)
	if _, err := Run(st, &Pool{ds: ds, answers: make([]map[string]task.Answer, 5)}, sim.RunOptions{}); err == nil {
		t.Fatal("empty pool should error")
	}
}

func TestReplayRetiresExhaustedWorkers(t *testing.T) {
	// A tiny pool where workers run out of eligible tasks: Run must
	// terminate without MaxSteps babysitting.
	ds := task.GenerateUniform(6, nil, 1)
	profiles := sim.GeneratePool(ds, 3, sim.PoolOptions{Generalists: 1}, 2)
	p, err := Collect(ds, profiles, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := baseline.NewRandomMV(ds, 3, nil, 1)
	st.SetEligible(p.Eligible())
	res, err := Run(st, p, sim.RunOptions{Seed: 4, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps >= 100000 {
		t.Fatal("replay failed to terminate early")
	}
}
