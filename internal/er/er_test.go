package er

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"icrowd/internal/baseline"
	"icrowd/internal/core"
	"icrowd/internal/sim"
	"icrowd/internal/task"
)

// productRecords builds a small catalog with known duplicates.
func productRecords() []Record {
	return []Record{
		{ID: "r0", Text: "iphone 4 wifi 32gb", Entity: "iphone4"},
		{ID: "r1", Text: "iphone four wifi 32gb", Entity: "iphone4"},
		{ID: "r2", Text: "iphone 4 case black", Entity: "iphone4case"},
		{ID: "r3", Text: "ipad 3 wifi 32gb", Entity: "ipad3"},
		{ID: "r4", Text: "new ipad wifi 32gb", Entity: "ipad3"},
		{ID: "r5", Text: "ipad retina display wifi", Entity: "ipad4"},
		{ID: "r6", Text: "ipod touch 32gb wifi", Entity: "ipodtouch"},
		{ID: "r7", Text: "ipod touch music player 32gb wifi", Entity: "ipodtouch"},
	}
}

func TestNewJobBlocking(t *testing.T) {
	job, err := NewJob(productRecords(), BlockingConfig{MinSim: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	ds := job.Dataset()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(job.Pairs()) {
		t.Fatal("one microtask per pair expected")
	}
	// The true duplicate pairs must survive blocking.
	want := map[[2]int]bool{{0, 1}: true, {3, 4}: true, {6, 7}: true}
	found := 0
	for _, p := range job.Pairs() {
		if want[[2]int{p.I, p.J}] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("blocking kept %d of %d true pairs", found, len(want))
	}
	// Ground truth flows from entity labels.
	for tid, p := range job.Pairs() {
		same := job.Records()[p.I].Entity == job.Records()[p.J].Entity
		truth := ds.Tasks[tid].Truth == task.Yes
		if same != truth {
			t.Fatalf("pair (%d,%d): truth mismatch", p.I, p.J)
		}
	}
}

func TestNewJobValidation(t *testing.T) {
	if _, err := NewJob(nil, BlockingConfig{}); err == nil {
		t.Fatal("empty records should error")
	}
	if _, err := NewJob([]Record{{ID: "a", Text: "x"}}, BlockingConfig{}); err == nil {
		t.Fatal("single record should error")
	}
	recs := []Record{{ID: "a", Text: "alpha beta"}, {ID: "b", Text: "...."}}
	if _, err := NewJob(recs, BlockingConfig{}); err == nil {
		t.Fatal("tokenless record should error")
	}
	far := []Record{{ID: "a", Text: "alpha beta"}, {ID: "b", Text: "gamma delta"}}
	if _, err := NewJob(far, BlockingConfig{MinSim: 0.9}); err == nil {
		t.Fatal("no candidate pairs should error")
	}
	// MaxPairs caps the workload, keeping the most similar pairs.
	job, err := NewJob(productRecords(), BlockingConfig{MinSim: 0.1, MaxPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if job.Dataset().Len() != 4 {
		t.Fatalf("MaxPairs ignored: %d tasks", job.Dataset().Len())
	}
	for i := 1; i < len(job.Pairs()); i++ {
		if job.Pairs()[i-1].Sim < job.Pairs()[i].Sim {
			t.Fatal("kept pairs not the most similar")
		}
	}
}

func TestResolveTransitiveClosure(t *testing.T) {
	// Oracle strategy: answer every microtask with its ground truth.
	job, err := NewJob(productRecords(), BlockingConfig{MinSim: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ds := job.Dataset()
	st, err := baseline.NewRandomMV(ds, 1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		tid, ok := st.RequestTask("oracle")
		if !ok {
			break
		}
		if err := st.SubmitAnswer("oracle", tid, ds.Tasks[tid].Truth); err != nil {
			t.Fatal(err)
		}
	}
	res := job.Resolve(st)
	m := job.Evaluate(res)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("oracle resolution not perfect: %s", m)
	}
	// Clusters: {0,1}, {2}, {3,4}, {5}, {6,7}.
	if len(res.Clusters) != 5 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if !strings.Contains(m.String(), "f1=1.000") {
		t.Fatalf("metrics string: %s", m)
	}
}

func TestResolveWithNoisyCrowd(t *testing.T) {
	// Full pipeline: ER job resolved by iCrowd over a simulated crowd.
	job, err := NewJob(productRecords(), BlockingConfig{MinSim: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ds := job.Dataset()
	bc := core.DefaultBasisConfig()
	bc.Threshold = 0.3
	basis, err := core.BuildBasis(ds, bc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Q = 2
	// With only two qualification microtasks the default 0.6 threshold
	// demands a perfect score; relax it so a small honest crowd stays
	// large enough to complete every pair.
	cfg.WarmupThreshold = 0.45
	ic, err := core.New(ds, basis, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A reliable crowd: the test verifies the pipeline, not crowd quality.
	pool := make([]sim.Profile, 10)
	for i := range pool {
		accs := map[string]float64{}
		for _, d := range ds.Domains {
			accs[d] = 0.9
		}
		pool[i] = sim.Profile{ID: fmt.Sprintf("W%02d", i), DomainAcc: accs}
	}
	resRun, err := sim.Run(ic, ds, pool, sim.RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !resRun.Completed {
		t.Fatal("crowd run did not complete")
	}
	res := job.Resolve(ic)
	m := job.Evaluate(res)
	if m.F1 < 0.4 {
		t.Fatalf("noisy-crowd F1 %v implausibly low", m.F1)
	}
	// Every record appears in exactly one cluster.
	seen := map[int]bool{}
	for _, c := range res.Clusters {
		for _, r := range c {
			if seen[r] {
				t.Fatal("record in two clusters")
			}
			seen[r] = true
		}
	}
	if len(seen) != len(job.Records()) {
		t.Fatal("clusters do not cover all records")
	}
}

func TestEvaluateSkipsUnlabeled(t *testing.T) {
	recs := []Record{
		{ID: "a", Text: "acme anvil heavy", Entity: "anvil"},
		{ID: "b", Text: "acme anvil heavy duty", Entity: "anvil"},
		{ID: "c", Text: "acme anvil extra"}, // unlabeled
	}
	job, err := NewJob(recs, BlockingConfig{MinSim: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ds := job.Dataset()
	st, _ := baseline.NewRandomMV(ds, 1, nil, 1)
	for !st.Done() {
		tid, ok := st.RequestTask("o")
		if !ok {
			break
		}
		_ = st.SubmitAnswer("o", tid, ds.Tasks[tid].Truth)
	}
	m := job.Evaluate(job.Resolve(st))
	// Only the (a,b) labeled pair counts.
	if m.TruePairs != 1 {
		t.Fatalf("TruePairs = %d, want 1", m.TruePairs)
	}
}

func TestBlockingScalesWithRandomCatalog(t *testing.T) {
	// Property-ish: blocking never emits a pair below the threshold, and
	// the pair list is deduplicated with I < J.
	rng := rand.New(rand.NewSource(9))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var recs []Record
	for i := 0; i < 40; i++ {
		var sb strings.Builder
		for w := 0; w < 4; w++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		recs = append(recs, Record{ID: strings.Repeat("r", i+1), Text: sb.String()})
	}
	job, err := NewJob(recs, BlockingConfig{MinSim: 0.5})
	if err != nil {
		t.Skip("no pairs at this threshold for this seed")
	}
	seen := map[[2]int]bool{}
	for _, p := range job.Pairs() {
		if p.I >= p.J {
			t.Fatal("pair not normalized")
		}
		if p.Sim < 0.5 {
			t.Fatalf("pair below threshold: %v", p.Sim)
		}
		key := [2]int{p.I, p.J}
		if seen[key] {
			t.Fatal("duplicate pair")
		}
		seen[key] = true
	}
}
