// Package er implements crowdsourced entity resolution, the application
// that motivates the paper's running examples (Section 1 and Table 1, after
// CrowdER [32]): given a set of records, it generates candidate
// record pairs by similarity blocking, turns each pair into a binary
// "are these the same entity?" microtask, resolves the microtasks through
// any core.Strategy, and clusters the records by the transitive closure of
// the crowd's YES verdicts.
package er

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"icrowd/internal/core"
	"icrowd/internal/task"
	"icrowd/internal/textsim"
)

// Record is one entity description to resolve.
type Record struct {
	// ID identifies the record.
	ID string
	// Text is the record's description (e.g. a product title).
	Text string
	// Entity optionally carries the ground-truth entity label for
	// evaluation; empty means unknown.
	Entity string
}

// Pair is a candidate duplicate pair of record indices (I < J).
type Pair struct {
	I, J int
	// Sim is the blocking similarity that promoted the pair.
	Sim float64
}

// BlockingConfig controls candidate-pair generation.
type BlockingConfig struct {
	// MinSim keeps only pairs with token Jaccard similarity >= MinSim
	// (default 0.3). Blocking is the standard trick that keeps the number
	// of crowd questions quadratic only within small blocks.
	MinSim float64
	// MaxPairs caps the number of generated microtasks (0 = unlimited);
	// the highest-similarity pairs are kept.
	MaxPairs int
}

// Job is a prepared entity-resolution crowd job.
type Job struct {
	records []Record
	pairs   []Pair
	dataset *task.Dataset
}

// NewJob tokenizes the records, generates candidate pairs by Jaccard
// blocking, and builds the microtask dataset. Ground-truth answers come
// from the records' Entity labels (records without labels produce tasks
// whose Truth defaults to NO — fine for running the crowd, but evaluation
// metrics then undercount).
func NewJob(records []Record, cfg BlockingConfig) (*Job, error) {
	if len(records) < 2 {
		return nil, errors.New("er: need at least two records")
	}
	if cfg.MinSim <= 0 {
		cfg.MinSim = 0.3
	}
	tokens := make([][]string, len(records))
	for i, r := range records {
		tokens[i] = textsim.Tokenize(r.Text)
		if len(tokens[i]) == 0 {
			return nil, fmt.Errorf("er: record %s has no tokens", r.ID)
		}
	}
	var pairs []Pair
	for i := range records {
		for j := i + 1; j < len(records); j++ {
			s := textsim.Jaccard(tokens[i], tokens[j])
			if s >= cfg.MinSim {
				pairs = append(pairs, Pair{I: i, J: j, Sim: s})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Sim != pairs[b].Sim {
			return pairs[a].Sim > pairs[b].Sim
		}
		if pairs[a].I != pairs[b].I {
			return pairs[a].I < pairs[b].I
		}
		return pairs[a].J < pairs[b].J
	})
	if cfg.MaxPairs > 0 && len(pairs) > cfg.MaxPairs {
		pairs = pairs[:cfg.MaxPairs]
	}
	if len(pairs) == 0 {
		return nil, errors.New("er: blocking produced no candidate pairs; lower MinSim")
	}

	ds := &task.Dataset{Name: "EntityResolution"}
	domains := map[string]bool{}
	for tid, p := range pairs {
		a, b := records[p.I], records[p.J]
		truth := task.No
		if a.Entity != "" && a.Entity == b.Entity {
			truth = task.Yes
		}
		// Domain: the records' shared leading token, a cheap topical label
		// that groups related comparisons (like Table 1's product
		// families) for the similarity graph and reporting.
		dom := sharedPrefixToken(tokens[p.I], tokens[p.J])
		domains[dom] = true
		ds.Tasks = append(ds.Tasks, task.Task{
			ID:     tid,
			Domain: dom,
			Text:   fmt.Sprintf("Are %q and %q the same entity?", a.Text, b.Text),
			Tokens: unionTokens(tokens[p.I], tokens[p.J]),
			Truth:  truth,
		})
	}
	for d := range domains {
		ds.Domains = append(ds.Domains, d)
	}
	sort.Strings(ds.Domains)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return &Job{records: records, pairs: pairs, dataset: ds}, nil
}

// sharedPrefixToken returns the first token the two records share, or the
// first token of the first record.
func sharedPrefixToken(a, b []string) string {
	set := map[string]bool{}
	for _, t := range b {
		set[t] = true
	}
	for _, t := range a {
		if set[t] {
			return t
		}
	}
	return a[0]
}

func unionTokens(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range a {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range b {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Dataset returns the microtask dataset the crowd answers.
func (j *Job) Dataset() *task.Dataset { return j.dataset }

// Pairs returns the candidate pairs in microtask-ID order.
func (j *Job) Pairs() []Pair { return append([]Pair(nil), j.pairs...) }

// Records returns the input records.
func (j *Job) Records() []Record { return append([]Record(nil), j.records...) }

// Resolution is the outcome of a crowd run.
type Resolution struct {
	// Matches are the pairs the crowd judged duplicates.
	Matches []Pair
	// Clusters groups record indices by the transitive closure of the
	// matches; singleton clusters are included. Each cluster is sorted and
	// clusters are ordered by their smallest member.
	Clusters [][]int
}

// Resolve interprets a strategy's aggregated results: YES pairs become
// matches, and records are clustered by union-find over the matches
// (duplicate-of is treated as transitive, as in CrowdER).
func (j *Job) Resolve(s core.Strategy) *Resolution {
	results := s.Results()
	res := &Resolution{}
	parent := make([]int, len(j.records))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for tid, p := range j.pairs {
		if results[tid] == task.Yes {
			res.Matches = append(res.Matches, p)
			union(p.I, p.J)
		}
	}
	groups := map[int][]int{}
	for i := range j.records {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	for _, members := range groups {
		sort.Ints(members)
		res.Clusters = append(res.Clusters, members)
	}
	sort.Slice(res.Clusters, func(a, b int) bool {
		return res.Clusters[a][0] < res.Clusters[b][0]
	})
	return res
}

// Metrics are pairwise entity-resolution quality numbers against the
// records' ground-truth entity labels.
type Metrics struct {
	// Precision, Recall, F1 over all record pairs with known labels
	// (computed on the transitive closure, not just the asked pairs).
	Precision, Recall, F1 float64
	// TruePairs is the number of ground-truth duplicate pairs.
	TruePairs int
	// PredictedPairs is the number of same-cluster pairs predicted.
	PredictedPairs int
}

// Evaluate computes pairwise precision/recall of a resolution against the
// records' Entity labels. Records without labels are skipped.
func (j *Job) Evaluate(res *Resolution) Metrics {
	cluster := make([]int, len(j.records))
	for ci, members := range res.Clusters {
		for _, m := range members {
			cluster[m] = ci
		}
	}
	var tp, fp, fn int
	for i := range j.records {
		if j.records[i].Entity == "" {
			continue
		}
		for k := i + 1; k < len(j.records); k++ {
			if j.records[k].Entity == "" {
				continue
			}
			same := j.records[i].Entity == j.records[k].Entity
			pred := cluster[i] == cluster[k]
			switch {
			case same && pred:
				tp++
			case !same && pred:
				fp++
			case same && !pred:
				fn++
			}
		}
	}
	m := Metrics{TruePairs: tp + fn, PredictedPairs: tp + fp}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "precision=%.3f recall=%.3f f1=%.3f (true pairs %d, predicted %d)",
		m.Precision, m.Recall, m.F1, m.TruePairs, m.PredictedPairs)
	return sb.String()
}
