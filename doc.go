// Package icrowd is a from-scratch Go reproduction of "iCrowd: An Adaptive
// Crowdsourcing Framework" (Fan, Li, Ooi, Tan, Feng — SIGMOD 2015).
//
// The implementation lives under internal/: the graph-based worker-accuracy
// estimation of Section 3 (internal/simgraph, internal/ppr,
// internal/estimate), the adaptive assignment of Section 4
// (internal/assign), the qualification machinery of Section 5
// (internal/qualify), the framework and its baselines (internal/core,
// internal/baseline), the AMT-style deployment of Appendix A
// (internal/platform), and the simulated crowd plus experiment harness that
// regenerate every table and figure of the evaluation (internal/sim,
// internal/experiments).
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate each experiment under `go test -bench`.
package icrowd
