// Benchmarks regenerating each table and figure of the paper's evaluation,
// plus micro-benchmarks of the hot paths (PPR solve, online estimation,
// greedy assignment, EM aggregation). Experiment benches run scaled-down
// configurations so `go test -bench=.` completes in minutes; the
// icrowd-experiments command runs the full-size versions.
package icrowd

import (
	"fmt"
	"testing"

	"icrowd/internal/aggregate"
	"icrowd/internal/assign"
	"icrowd/internal/core"
	"icrowd/internal/estimate"
	"icrowd/internal/experiments"
	"icrowd/internal/lda"
	"icrowd/internal/ppr"
	"icrowd/internal/qualify"
	"icrowd/internal/simgraph"
	"icrowd/internal/task"
	"icrowd/internal/textsim"
)

func benchOpt() experiments.Options {
	return experiments.Options{Seed: 1, Repeats: 1}
}

// BenchmarkTable4Datasets regenerates the Table-4 dataset statistics.
func BenchmarkTable4Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.Table4(int64(i)); len(tb.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig6Diversity regenerates the Figure-6 accuracy-diversity study
// (answer collection with redundant random assignment).
func BenchmarkFig6Diversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.DatasetYahooQA, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Acc
	}
}

// BenchmarkFig7Qualification regenerates the Figure-7 qualification
// comparison (RandomQF vs InfQF) on YahooQA.
func BenchmarkFig7Qualification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpt()
		opt.Seed = int64(i + 1)
		if _, err := experiments.Fig7(experiments.DatasetYahooQA, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Adaptivity regenerates the Figure-8 strategy ablation
// (QF-Only / BestEffort / Adapt) on YahooQA.
func BenchmarkFig8Adaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpt()
		opt.Seed = int64(i + 1)
		if _, err := experiments.Fig8(experiments.DatasetYahooQA, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Comparison regenerates the Figure-9 headline comparison
// (RandomMV / RandomEM / AvgAccPV / iCrowd) on YahooQA.
func BenchmarkFig9Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpt()
		opt.Seed = int64(i + 1)
		if _, err := experiments.Fig9(experiments.DatasetYahooQA, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10AssignmentRound measures one full Algorithm-2 assignment
// round at growing scales with bounded neighbor counts — the Figure-10
// scalability series.
func BenchmarkFig10AssignmentRound(b *testing.B) {
	for _, n := range []int{20_000, 50_000, 100_000} {
		for _, m := range []int{20, 40} {
			b.Run(fmt.Sprintf("tasks=%d/neighbors=%d", n, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := experiments.Fig10([]int{n}, []int{m}, 50, 1)
					if err != nil {
						b.Fatal(err)
					}
					_ = res.Elapsed
				}
			})
		}
	}
}

// BenchmarkFig12Measures regenerates a scaled-down Figure-12 sweep
// (similarity measure x threshold).
func BenchmarkFig12Measures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12([]float64{0.25}, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Alpha regenerates a scaled-down Figure-13 alpha sweep.
func BenchmarkFig13Alpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13([]float64{0.1, 1, 10}, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14AssignmentSize regenerates a scaled-down Figure-14 k sweep.
func BenchmarkFig14AssignmentSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14([]int{1, 3}, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Distribution regenerates the Figure-15 top-worker
// assignment distribution.
func BenchmarkFig15Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5GreedyError regenerates the Table-5 greedy-vs-optimal
// approximation-error measurement.
func BenchmarkTable5GreedyError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5([]int{3, 5, 7}, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func itemCompareBasis(b *testing.B) (*task.Dataset, *simgraph.Graph, *ppr.Basis) {
	b.Helper()
	ds := task.GenerateItemCompare(1)
	g, err := simgraph.Build(ds.Len(), simgraph.JaccardMetric(ds), 0.25, 0)
	if err != nil {
		b.Fatal(err)
	}
	basis, err := ppr.Precompute(g, ppr.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return ds, g, basis
}

// BenchmarkGraphBuild measures similarity-graph construction on the full
// ItemCompare dataset (O(n^2) Jaccard).
func BenchmarkGraphBuild(b *testing.B) {
	ds := task.GenerateItemCompare(1)
	metric := simgraph.JaccardMetric(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simgraph.Build(ds.Len(), metric, 0.25, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPRSparseSolve measures one basis-vector computation.
func BenchmarkPPRSparseSolve(b *testing.B) {
	_, g, _ := itemCompareBasis(b)
	o := ppr.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ppr.SparseSolve(g, i%g.N(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPRPrecompute measures the full offline phase of Algorithm 1.
func BenchmarkPPRPrecompute(b *testing.B) {
	_, g, _ := itemCompareBasis(b)
	o := ppr.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppr.Precompute(g, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateOnline measures the O(|completed| * nnz) online
// estimation step (observe + accuracy lookups).
func BenchmarkEstimateOnline(b *testing.B) {
	ds, _, basis := itemCompareBasis(b)
	est := estimate.New(basis, estimate.DefaultLambda)
	est.EnsureWorker("w", 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := est.Observe("w", i%ds.Len(), float64(i%2)); err != nil {
			b.Fatal(err)
		}
		_ = est.Accuracy("w", (i*7)%ds.Len())
	}
}

// BenchmarkTopWorkersIndexed measures indexed top-worker-set computation
// over 100 workers.
func BenchmarkTopWorkersIndexed(b *testing.B) {
	ds, _, basis := itemCompareBasis(b)
	est := estimate.New(basis, estimate.DefaultLambda)
	ids := make([]string, 100)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%03d", i)
		est.EnsureWorker(ids[i], 0.4+float64(i%60)/100)
	}
	ix := assign.NewIndex(est, ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.TopWorkers(i%ds.Len(), 3, nil); len(got) != 3 {
			b.Fatal("bad top set")
		}
	}
}

// BenchmarkGreedyAssign measures Algorithm 3 over ItemCompare-sized
// candidate lists.
func BenchmarkGreedyAssign(b *testing.B) {
	ds, _, basis := itemCompareBasis(b)
	est := estimate.New(basis, estimate.DefaultLambda)
	ids := make([]string, 50)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%03d", i)
		est.EnsureWorker(ids[i], 0.4+float64(i%60)/100)
	}
	cands := make([]assign.CandidateAssignment, 0, ds.Len())
	for tid := 0; tid < ds.Len(); tid++ {
		cands = append(cands, assign.CandidateAssignment{
			Task:    tid,
			Workers: assign.TopWorkers(est, tid, 3, ids),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := assign.Greedy(cands); len(got) == 0 {
			b.Fatal("empty scheme")
		}
	}
}

// BenchmarkQualifySelect measures Algorithm-4 qualification selection.
func BenchmarkQualifySelect(b *testing.B) {
	_, _, basis := itemCompareBasis(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qualify.SelectGreedy(basis, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDawidSkene measures the RandomEM aggregation over a
// 360-task/50-worker vote table.
func BenchmarkDawidSkene(b *testing.B) {
	ds := task.GenerateItemCompare(1)
	votes := map[int][]aggregate.Vote{}
	for tid := 0; tid < ds.Len(); tid++ {
		for j := 0; j < 3; j++ {
			w := fmt.Sprintf("w%02d", (tid*3+j)%50)
			ans := ds.Tasks[tid].Truth
			if (tid+j)%4 == 0 {
				ans = ans.Flip()
			}
			votes[tid] = append(votes[tid], aggregate.Vote{Worker: w, Answer: ans})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.DawidSkene(votes, 50, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJaccard measures the token-set similarity primitive.
func BenchmarkJaccard(b *testing.B) {
	ds := task.ProductMatching()
	a, c := ds.Tasks[0].Tokens, ds.Tasks[5].Tokens
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = textsim.Jaccard(a, c)
	}
}

// BenchmarkLDATrain measures LDA topic fitting on the ItemCompare corpus
// (the offline cost behind the Cos(topic) measure).
func BenchmarkLDATrain(b *testing.B) {
	ds := task.GenerateItemCompare(1)
	corpus := make([][]string, ds.Len())
	for i, t := range ds.Tasks {
		corpus[i] = t.Tokens
	}
	cfg := lda.DefaultConfig(4, 1)
	cfg.Iterations = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lda.Train(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveRound measures one request/submit cycle of the full
// framework mid-run.
func BenchmarkAdaptiveRound(b *testing.B) {
	ds, _, basis := itemCompareBasis(b)
	workers := []string{"a", "bb", "c"}
	newQualified := func() *core.ICrowd {
		cfg := core.DefaultConfig()
		ic, err := core.New(ds, basis, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range workers {
			for range ic.QualificationTasks() {
				tid, ok := ic.RequestTask(w)
				if !ok {
					b.Fatal("no qualification task")
				}
				if err := ic.SubmitAnswer(w, tid, ds.Tasks[tid].Truth); err != nil {
					b.Fatal(err)
				}
			}
		}
		return ic
	}
	ic := newQualified()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workers[i%len(workers)]
		tid, ok := ic.RequestTask(w)
		if !ok {
			// Job finished: start a fresh one (setup cost is part of the
			// amortized per-round figure).
			ic = newQualified()
			continue
		}
		if err := ic.SubmitAnswer(w, tid, ds.Tasks[tid].Truth); err != nil {
			b.Fatal(err)
		}
	}
}
