// Benchmarks for the estimation/assignment hot path, backing the
// BENCH_hotpath.json report (`make bench`, cmd/icrowd-bench). The bodies
// live in internal/hotbench so the report and these benchmarks can never
// drift apart.
package icrowd

import (
	"fmt"
	"testing"

	"icrowd/internal/core"
	"icrowd/internal/hotbench"
)

// BenchmarkPrecompute measures the offline PPR basis precomputation,
// sequential vs the 8-way solver pool (the two produce bit-identical
// bases; see ppr.TestPrecomputeParallelParity).
func BenchmarkPrecompute(b *testing.B) {
	for _, w := range []int{1, hotbench.ParallelWorkers} {
		b.Run(fmt.Sprintf("workers=%d", w), hotbench.Precompute(w))
	}
}

// BenchmarkPrecomputeDelta measures the incremental-maintenance path: a
// basis covering all but one task invalidates and re-solves that single
// seed via Basis.SolveMissing each iteration. The benchdiff gate holds it
// >= 10x cheaper than the sequential full precompute.
func BenchmarkPrecomputeDelta(b *testing.B) {
	hotbench.PrecomputeDelta()(b)
}

// BenchmarkComputeScheme measures one adaptive round mid-job: a submitted
// answer dirties the worker's top-set entries and the following request
// forces the incremental scheme recomputation.
func BenchmarkComputeScheme(b *testing.B) {
	for _, c := range []int{1, hotbench.ParallelWorkers} {
		b.Run(fmt.Sprintf("concurrency=%d", c), hotbench.ComputeScheme(c))
	}
}

// BenchmarkAssignThroughput measures the /assign fast path: concurrent
// idempotent redelivery reads served under the framework's read lock. The
// metrics=off variant disables the observability layer to expose its
// overhead (budget: <= 5%, tracked in BENCH_hotpath.json).
func BenchmarkAssignThroughput(b *testing.B) {
	b.Run(fmt.Sprintf("workers=%d", hotbench.ParallelWorkers),
		hotbench.AssignThroughput(hotbench.ParallelWorkers))
	b.Run(fmt.Sprintf("workers=%d/metrics=off", hotbench.ParallelWorkers),
		hotbench.AssignThroughput(hotbench.ParallelWorkers, core.WithMetrics(nil)))
}
