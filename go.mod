module icrowd

go 1.22
