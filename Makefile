GO ?= go

.PHONY: all build test check vet race parity bench bench-all clean

all: build

# Quick loop: skips the chaos soak test (gated on -short).
test:
	$(GO) test -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector, soak test included.
race:
	$(GO) test -race ./...

# Determinism contracts on their own: parallel precompute and the cached
# scheme are bit-identical to the sequential paths, and the /v1 API is
# byte-identical to the legacy mount. (Also covered by `race`, but this
# target names the invariants and runs in seconds.)
parity:
	$(GO) test -run 'Parity|Golden|Deterministic' ./internal/ppr ./internal/core ./internal/platform

# The gate a PR must pass.
check: vet parity race

# Hot-path benchmarks -> BENCH_hotpath.json (sequential vs parallel
# precompute, incremental scheme recompute, /assign read throughput).
bench:
	$(GO) run ./cmd/icrowd-bench -out BENCH_hotpath.json

# Every benchmark in the repo, including the paper's tables and figures.
bench-all:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
