GO ?= go

.PHONY: all build test check vet race bench clean

all: build

build:
	$(GO) build ./...

# Quick loop: skips the chaos soak test (gated on -short).
test:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector, soak test included.
race:
	$(GO) test -race ./...

# The gate a PR must pass.
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
