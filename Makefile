GO ?= go

.PHONY: all build test check lint vet race race-hot parity store-conformance load-smoke router-smoke trace-smoke bench bench-all bench-diff bench-diff-report clean

all: build

# Quick loop: skips the chaos soak test (gated on -short).
test:
	$(GO) test -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static hygiene: go vet plus gofmt as a failing check (gofmt -l lists
# unformatted files but always exits 0, so fail explicitly when it does).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Full suite under the race detector, soak test included.
race:
	$(GO) test -race ./...

# Focused race pass over the observability layer, the platform server and
# the shard router — the packages whose instruments, log handler, tracer
# ring, SLO burn-rate engine, probe surface, admission gate, per-worker
# limiter map and health tracker are hammered from many goroutines at once
# (see TestContentionAllInstruments, TestWorkerLimiterEvictRaceHammer,
# TestChaosOverloadBurst, TestChaosKillShard, TestTraceAssemblyAcrossFleet).
race-hot:
	$(GO) test -race ./internal/obsv ./internal/platform ./internal/shard

# Backend conformance suite: every store.Backend implementation (the CRC
# log and the segmented indexed store) must pass the same contract tests —
# append/replay parity, torn-tail crash recovery, snapshot round-trips,
# indexed-lookup equivalence. Run this when adding or changing a backend.
store-conformance:
	$(GO) test -run 'TestConformance' -count=1 ./internal/store

# End-to-end overload smoke: boot icrowd-server with admission control and
# the per-worker limiter on, drive a short open-loop load pass, and fail
# on any 5xx or an empty report (writes /tmp/icrowd_load_smoke.json; the
# committed BENCH_load.json is a full-length run of the same harness).
load-smoke:
	./scripts/load_smoke.sh

# End-to-end sharding smoke: three icrowd-server shards behind
# icrowd-router — writes route by worker, reads merge, a killed shard
# degrades to the typed shard_unavailable 503 and is re-admitted after a
# restart from its own event log.
router-smoke:
	./scripts/router_smoke.sh

# End-to-end tracing smoke: two shards behind the router, one submit, and
# GET /v1/trace/{traceid} must assemble the cross-process tree — router
# span as root, the owning shard's spans as children, one shared trace ID.
trace-smoke:
	./scripts/trace_smoke.sh

# Determinism contracts on their own: parallel precompute and the cached
# scheme are bit-identical to the sequential paths, and the /v1 API is
# byte-identical to the legacy mount. (Also covered by `race`, but this
# target names the invariants and runs in seconds.)
parity:
	$(GO) test -run 'Parity|Golden|Deterministic' ./internal/ppr ./internal/core ./internal/platform

# The gate a PR must pass. bench-diff runs report-only here because shared
# CI machines are too noisy for a hard ns/op gate; run `make bench-diff`
# on a quiet box before committing a perf-sensitive change.
check: lint parity store-conformance race race-hot load-smoke router-smoke trace-smoke bench-diff-report

# Hot-path benchmarks -> BENCH_hotpath.json (sequential vs parallel
# precompute, incremental scheme recompute, /assign read throughput).
bench:
	$(GO) run ./cmd/icrowd-bench -out BENCH_hotpath.json

# Every benchmark in the repo, including the paper's tables and figures.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression gate: re-measure the hot path and fail when any
# benchmark's ns/op regressed more than 10% against the committed
# BENCH_hotpath.json.
bench-diff:
	$(GO) run ./cmd/icrowd-bench -out /tmp/icrowd_bench_new.json
	$(GO) run ./cmd/icrowd-benchdiff BENCH_hotpath.json /tmp/icrowd_bench_new.json

# Same comparison, but never fails the build: prints the delta table for
# human review (what `make check` runs).
bench-diff-report:
	$(GO) run ./cmd/icrowd-bench -out /tmp/icrowd_bench_new.json
	$(GO) run ./cmd/icrowd-benchdiff -report-only BENCH_hotpath.json /tmp/icrowd_bench_new.json

clean:
	$(GO) clean ./...
