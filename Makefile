GO ?= go

.PHONY: all build test check lint vet race parity bench bench-all clean

all: build

# Quick loop: skips the chaos soak test (gated on -short).
test:
	$(GO) test -short ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static hygiene: go vet plus gofmt as a failing check (gofmt -l lists
# unformatted files but always exits 0, so fail explicitly when it does).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Full suite under the race detector, soak test included.
race:
	$(GO) test -race ./...

# Determinism contracts on their own: parallel precompute and the cached
# scheme are bit-identical to the sequential paths, and the /v1 API is
# byte-identical to the legacy mount. (Also covered by `race`, but this
# target names the invariants and runs in seconds.)
parity:
	$(GO) test -run 'Parity|Golden|Deterministic' ./internal/ppr ./internal/core ./internal/platform

# The gate a PR must pass.
check: lint parity race

# Hot-path benchmarks -> BENCH_hotpath.json (sequential vs parallel
# precompute, incremental scheme recompute, /assign read throughput).
bench:
	$(GO) run ./cmd/icrowd-bench -out BENCH_hotpath.json

# Every benchmark in the repo, including the paper's tables and figures.
bench-all:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
