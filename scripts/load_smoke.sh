#!/bin/sh
# load-smoke: boot icrowd-server with the overload-protection flags on,
# drive a short bounded open-loop load pass with icrowd-loadgen, and fail
# on any 5xx response or an empty report. `make load-smoke` runs this; it
# is part of `make check`.
#
# Environment knobs: GO (toolchain), PORT (listen port), OUT (report path).
set -eu

GO=${GO:-go}
PORT=${PORT:-18973}
OUT=${OUT:-/tmp/icrowd_load_smoke.json}

BIN=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

$GO build -o "$BIN/icrowd-server" ./cmd/icrowd-server
$GO build -o "$BIN/icrowd-loadgen" ./cmd/icrowd-loadgen

# Small capacity on purpose: the smoke run must exercise the shed path,
# not just the happy path — and still produce zero 5xx.
"$BIN/icrowd-server" -addr "127.0.0.1:$PORT" -strategy randommv -k 3 \
	-lease 30s -max-inflight 4 -queue-depth 8 -queue-timeout 100ms \
	-request-timeout 2s -worker-rate 10 -worker-burst 5 \
	>"$BIN/server.log" 2>&1 &
SRV_PID=$!

# The generator polls /v1/healthz itself (-wait-ready) and exits non-zero
# when the server returned any 5xx or nothing was admitted at all.
if ! "$BIN/icrowd-loadgen" -target "http://127.0.0.1:$PORT" \
	-rate 300 -duration 3s -workers 100 -zipf 1.5 -seed 1 \
	-wait-ready 20s -out "$OUT"; then
	echo "load-smoke: FAILED; server log follows" >&2
	cat "$BIN/server.log" >&2
	exit 1
fi

[ -s "$OUT" ] || { echo "load-smoke: $OUT is empty" >&2; exit 1; }
echo "load-smoke: OK ($OUT)"
