#!/bin/sh
# load-smoke: boot icrowd-server with the overload-protection flags on and
# a multi-project data directory, drive a short bounded open-loop load pass
# with icrowd-loadgen, then create a named project over the API and push a
# few assignments through it. Fail on any 5xx response, an empty report, or
# a non-2xx from the project routes. `make load-smoke` runs this; it is
# part of `make check`.
#
# Environment knobs: GO (toolchain), PORT (listen port), OUT (report path).
set -eu

GO=${GO:-go}
PORT=${PORT:-18973}
OUT=${OUT:-/tmp/icrowd_load_smoke.json}

BIN=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

$GO build -o "$BIN/icrowd-server" ./cmd/icrowd-server
$GO build -o "$BIN/icrowd-loadgen" ./cmd/icrowd-loadgen

# Small capacity on purpose: the smoke run must exercise the shed path,
# not just the happy path — and still produce zero 5xx.
"$BIN/icrowd-server" -addr "127.0.0.1:$PORT" -strategy randommv -k 3 \
	-lease 30s -max-inflight 4 -queue-depth 8 -queue-timeout 100ms \
	-request-timeout 2s -worker-rate 10 -worker-burst 5 \
	-slo-latency 250ms -slo-burn-degraded 14.4 \
	-data-dir "$BIN/data" \
	>"$BIN/server.log" 2>&1 &
SRV_PID=$!

# The generator polls /v1/healthz itself (-wait-ready) and exits non-zero
# when the server returned any 5xx or nothing was admitted at all.
if ! "$BIN/icrowd-loadgen" -target "http://127.0.0.1:$PORT" \
	-rate 300 -duration 3s -workers 100 -zipf 1.5 -seed 1 \
	-wait-ready 20s -out "$OUT"; then
	echo "load-smoke: FAILED; server log follows" >&2
	cat "$BIN/server.log" >&2
	exit 1
fi

[ -s "$OUT" ] || { echo "load-smoke: $OUT is empty" >&2; exit 1; }

# The server ran with -slo-latency, so the generator must have captured
# burn-rate samples into the report's slo section.
grep -q '"slo"' "$OUT" || {
	echo "load-smoke: report has no slo section despite -slo-latency" >&2
	cat "$OUT" >&2
	exit 1
}

# Projects smoke: create a named project and exercise its scoped routes.
# Every call must return 2xx; assignment may legitimately report
# assigned=false (the loadgen never touches this project, so it won't).
BASE="http://127.0.0.1:$PORT/v1/projects/smoke"
api() {
	# api METHOD URL [JSON-BODY] -> body on stdout, fails the script on
	# non-2xx.
	if [ $# -ge 3 ]; then
		code=$(curl -s -o "$BIN/resp.json" -w '%{http_code}' -X "$1" \
			-H 'Content-Type: application/json' -d "$3" "$2")
	else
		code=$(curl -s -o "$BIN/resp.json" -w '%{http_code}' -X "$1" "$2")
	fi
	case "$code" in
	2*) cat "$BIN/resp.json" ;;
	*)
		echo "load-smoke: $1 $2 -> HTTP $code" >&2
		cat "$BIN/resp.json" >&2
		echo "load-smoke: server log follows" >&2
		cat "$BIN/server.log" >&2
		exit 1
		;;
	esac
}
api PUT "$BASE" >/dev/null
api GET "http://127.0.0.1:$PORT/v1/projects" >/dev/null
assign=$(api GET "$BASE/assign?workerId=smoke-w1")
case "$assign" in
*'"assigned":true'*) ;;
*)
	echo "load-smoke: project assign did not assign: $assign" >&2
	exit 1
	;;
esac
tid=$(printf '%s' "$assign" | sed -n 's/.*"taskId":\([0-9]*\).*/\1/p')
api POST "$BASE/submit" \
	"{\"workerId\":\"smoke-w1\",\"taskId\":$tid,\"answer\":\"YES\"}" >/dev/null
api POST "$BASE/inactive?workerId=smoke-w1" >/dev/null
api GET "$BASE/status" >/dev/null
echo "load-smoke: OK ($OUT; project routes OK)"
