#!/bin/sh
# router-smoke: boot three icrowd-server shards plus icrowd-router in front
# of them, then exercise the sharded surface end-to-end: writes route by
# worker to their owning shard, reads merge across the fleet, a killed
# shard degrades to the typed shard_unavailable 503 while survivors keep
# serving, and a restart re-admits it. `make router-smoke` runs this; it is
# part of `make check`.
#
# Environment knobs: GO (toolchain), PORT (router port; shards use
# PORT+1..PORT+3).
set -eu

GO=${GO:-go}
PORT=${PORT:-18983}
S1=$((PORT + 1))
S2=$((PORT + 2))
S3=$((PORT + 3))

BIN=$(mktemp -d)
PIDS=
cleanup() {
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

$GO build -o "$BIN/icrowd-server" ./cmd/icrowd-server
$GO build -o "$BIN/icrowd-router" ./cmd/icrowd-router

start_shard() {
	# start_shard PORT LOGFILE -> pid on stdout
	"$BIN/icrowd-server" -addr "127.0.0.1:$1" -strategy randommv -k 3 \
		-log "$2" >"$BIN/shard_$1.log" 2>&1 &
	echo $!
}

SHARD1_PID=$(start_shard "$S1" "$BIN/shard1.events.log")
PIDS="$SHARD1_PID"
PIDS="$PIDS $(start_shard "$S2" "$BIN/shard2.events.log")"
PIDS="$PIDS $(start_shard "$S3" "$BIN/shard3.events.log")"

"$BIN/icrowd-router" -addr "127.0.0.1:$PORT" \
	-shards "http://127.0.0.1:$S1,http://127.0.0.1:$S2,http://127.0.0.1:$S3" \
	-probe-interval 250ms >"$BIN/router.log" 2>&1 &
PIDS="$PIDS $!"

BASE="http://127.0.0.1:$PORT"

fail() {
	echo "router-smoke: $1" >&2
	echo "router-smoke: router log follows" >&2
	cat "$BIN/router.log" >&2
	exit 1
}

# api METHOD URL [JSON-BODY] -> body on stdout; echoes HTTP code to fd 3.
api() {
	if [ $# -ge 3 ]; then
		curl -s -o "$BIN/resp.json" -w '%{http_code}' -X "$1" \
			-H 'Content-Type: application/json' -d "$3" "$2" >"$BIN/code"
	else
		curl -s -o "$BIN/resp.json" -w '%{http_code}' -X "$1" "$2" >"$BIN/code"
	fi
	cat "$BIN/resp.json"
}

# Wait for the fleet to come up (readyz merges every shard's probe).
ready=0
for _ in $(seq 1 80); do
	if [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/readyz" 2>/dev/null)" = 200 ]; then
		ready=1
		break
	fi
	sleep 0.25
done
[ "$ready" = 1 ] || fail "fleet never became ready"

# Push a small crowd through the router: every assign must land, every
# submit must be accepted, regardless of which shard owns the worker.
for i in $(seq 1 12); do
	w="smoke-w$i"
	assign=$(api GET "$BASE/v1/assign?workerId=$w")
	[ "$(cat "$BIN/code")" = 200 ] || fail "assign $w -> HTTP $(cat "$BIN/code"): $assign"
	case "$assign" in
	*'"assigned":true'*) ;;
	*) fail "assign $w did not assign: $assign" ;;
	esac
	tid=$(printf '%s' "$assign" | sed -n 's/.*"taskId":\([0-9]*\).*/\1/p')
	body=$(api POST "$BASE/v1/submit" "{\"workerId\":\"$w\",\"taskId\":$tid,\"answer\":\"YES\"}")
	[ "$(cat "$BIN/code")" = 200 ] || fail "submit $w -> HTTP $(cat "$BIN/code"): $body"
done

# The write path must have spread across all three shards (the ring is
# balanced) — check each shard logged at least one event.
for f in "$BIN/shard1.events.log" "$BIN/shard2.events.log" "$BIN/shard3.events.log"; do
	[ -s "$f" ] || fail "shard log $f is empty: the ring routed nothing there"
done

# Merged reads: status sums the fleet, metrics carry a shard label per
# origin, /v1/shards reports all three up.
status=$(api GET "$BASE/v1/status")
[ "$(cat "$BIN/code")" = 200 ] || fail "status -> HTTP $(cat "$BIN/code")"
case "$status" in
*'"strategy":"RandomMV"'*) ;;
*) fail "merged status missing strategy: $status" ;;
esac
metrics=$(api GET "$BASE/v1/metrics")
case "$metrics" in
*"shard=\"http://127.0.0.1:$S1\""*) ;;
*) fail "metrics missing shard label for shard 1" ;;
esac
case "$metrics" in
*'shard="router"'*) ;;
*) fail "metrics missing the router's own series" ;;
esac
shardsjson=$(api GET "$BASE/v1/shards")
case "$shardsjson" in
*'"up":false'*) fail "a shard reports down while the fleet is whole: $shardsjson" ;;
esac

# Kill shard 1: its key range must degrade to the typed 503 (and nothing
# else), survivors must keep serving, and readyz must flip to 503.
kill "$SHARD1_PID"
wait "$SHARD1_PID" 2>/dev/null || true
got503=0
survived=0
for i in $(seq 1 40); do
	w="smoke-kill-w$i"
	body=$(api GET "$BASE/v1/assign?workerId=$w")
	code=$(cat "$BIN/code")
	case "$code" in
	200) survived=$((survived + 1)) ;;
	503)
		case "$body" in
		*'"code":"shard_unavailable"'*) got503=$((got503 + 1)) ;;
		*) fail "503 without shard_unavailable code: $body" ;;
		esac
		;;
	*) fail "assign $w with dead shard -> HTTP $code: $body" ;;
	esac
done
[ "$got503" -gt 0 ] || fail "no worker hit the dead shard's range (got503=0)"
[ "$survived" -gt 0 ] || fail "no worker survived on the live shards"
for _ in $(seq 1 40); do
	[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/readyz")" = 503 ] && break
	sleep 0.25
done
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/readyz")" = 503 ] || \
	fail "readyz stayed 200 with a dead shard"

# Restart shard 1 from its event log at the same address: the router must
# re-admit it and the fleet must report ready again.
SHARD1_PID=$(start_shard "$S1" "$BIN/shard1.events.log")
PIDS="$PIDS $SHARD1_PID"
readmitted=0
for _ in $(seq 1 80); do
	if [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/readyz")" = 200 ]; then
		readmitted=1
		break
	fi
	sleep 0.25
done
[ "$readmitted" = 1 ] || fail "restarted shard was never re-admitted"

echo "router-smoke: OK (3 shards + router; kill/restart degraded and recovered cleanly)"
