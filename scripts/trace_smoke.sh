#!/bin/sh
# trace-smoke: boot two icrowd-server shards behind icrowd-router, push one
# assign+submit through the router, then assert GET /v1/trace/{traceid} on
# the router assembles the cross-process tree: the router's span is the
# root, the owning shard's http.submit span is its child, and every span
# shares the one 128-bit trace ID echoed in X-Request-Id. Also checks the
# router's /v1/slo rollup answers, since the shards run with -slo-latency.
# `make trace-smoke` runs this; it is part of `make check`.
#
# Environment knobs: GO (toolchain), PORT (router port; shards use
# PORT+1..PORT+2).
set -eu

GO=${GO:-go}
PORT=${PORT:-18993}
S1=$((PORT + 1))
S2=$((PORT + 2))

BIN=$(mktemp -d)
PIDS=
cleanup() {
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

$GO build -o "$BIN/icrowd-server" ./cmd/icrowd-server
$GO build -o "$BIN/icrowd-router" ./cmd/icrowd-router

start_shard() {
	# start_shard PORT LOGFILE -> pid on stdout
	"$BIN/icrowd-server" -addr "127.0.0.1:$1" -strategy randommv -k 3 \
		-log "$2" -slo-latency 250ms >"$BIN/shard_$1.log" 2>&1 &
	echo $!
}

PIDS="$(start_shard "$S1" "$BIN/shard1.events.log")"
PIDS="$PIDS $(start_shard "$S2" "$BIN/shard2.events.log")"

"$BIN/icrowd-router" -addr "127.0.0.1:$PORT" \
	-shards "http://127.0.0.1:$S1,http://127.0.0.1:$S2" \
	-probe-interval 250ms >"$BIN/router.log" 2>&1 &
PIDS="$PIDS $!"

BASE="http://127.0.0.1:$PORT"

fail() {
	echo "trace-smoke: $1" >&2
	echo "trace-smoke: router log follows" >&2
	cat "$BIN/router.log" >&2
	exit 1
}

# Wait for the fleet to come up.
ready=0
for _ in $(seq 1 80); do
	if [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/readyz" 2>/dev/null)" = 200 ]; then
		ready=1
		break
	fi
	sleep 0.25
done
[ "$ready" = 1 ] || fail "fleet never became ready"

# One assign + submit through the router, capturing the submit's trace ID
# from the router's X-Request-Id echo.
assign=$(curl -s "$BASE/v1/assign?workerId=trace-w1")
case "$assign" in
*'"assigned":true'*) ;;
*) fail "assign did not assign: $assign" ;;
esac
tid=$(printf '%s' "$assign" | sed -n 's/.*"taskId":\([0-9]*\).*/\1/p')
curl -s -D "$BIN/headers" -o "$BIN/submit.json" \
	-H 'Content-Type: application/json' \
	-d "{\"workerId\":\"trace-w1\",\"taskId\":$tid,\"answer\":\"YES\"}" \
	"$BASE/v1/submit"
rid=$(sed -n 's/^[Xx]-[Rr]equest-[Ii]d: *//p' "$BIN/headers" | tr -d '\r' | head -n 1)
printf '%s' "$rid" | grep -Eq '^[0-9a-f]{32}$' || \
	fail "submit X-Request-Id is not a 128-bit trace ID: '$rid'"

trace=$(curl -s "$BASE/v1/trace/$rid")
printf '%s' "$trace" >"$BIN/trace.json"

# The flat span list must hold the router's span and the owning shard's
# request span plus its sub-operation children, all in the same trace.
for want in '"name":"router.submit"' '"origin":"router"' \
	'"name":"http.submit"' '"origin":"http://127.0.0.1:' \
	'"name":"log.append"' '"name":"scheme.recompute"'; do
	case "$trace" in
	*"$want"*) ;;
	*) fail "assembly missing $want: $trace" ;;
	esac
done
spans=$(grep -o "\"traceId\":\"$rid\"" "$BIN/trace.json" | wc -l)
[ "$spans" -ge 4 ] || fail "only $spans spans share trace $rid, want >= 4"

# The assembled tree's root must be the router's span: the first name
# inside the "tree" section is the root's.
tree=${trace#*\"tree\":}
root=$(printf '%s' "$tree" | grep -o '"name":"[^"]*"' | head -n 1)
[ "$root" = '"name":"router.submit"' ] || \
	fail "tree root is $root, want router.submit"

# The SLO rollup merges the shards' burn-rate reports.
slo=$(curl -s "$BASE/v1/slo")
case "$slo" in
*'"objectives"'*) ;;
*) fail "router /v1/slo did not answer with a merged report: $slo" ;;
esac
case "$slo" in
*'"key":"submit"'*) ;;
*) fail "merged SLO report missing the submit objective: $slo" ;;
esac

echo "trace-smoke: OK (trace $rid assembled across router + shard; SLO rollup answered)"
