// Ablation benchmarks for the design choices DESIGN.md calls out: the
// heap-based greedy vs the paper's literal O(|T|^2) loop, the sparse PPR
// push vs dense power iteration, and the indexed top-worker computation vs
// the O(|W|) scan.
package icrowd

import (
	"fmt"
	"testing"

	"icrowd/internal/assign"
	"icrowd/internal/estimate"
	"icrowd/internal/ppr"
	"icrowd/internal/simgraph"
	"icrowd/internal/task"
)

// ablationFixture bundles the shared setup.
type ablationFixture struct {
	ds    *task.Dataset
	g     *simgraph.Graph
	basis *ppr.Basis
	est   *estimate.Estimator
	ids   []string
	cands []assign.CandidateAssignment
}

func newAblationFixture(b *testing.B, workers int) *ablationFixture {
	b.Helper()
	ds := task.GenerateItemCompare(1)
	g, err := simgraph.Build(ds.Len(), simgraph.JaccardMetric(ds), 0.25, 0)
	if err != nil {
		b.Fatal(err)
	}
	basis, err := ppr.Precompute(g, ppr.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	est := estimate.New(basis, estimate.DefaultLambda)
	ids := make([]string, workers)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%03d", i)
		est.EnsureWorker(ids[i], 0.4+float64(i%60)/100)
		// A little evidence so support lists are non-trivial.
		if err := est.Observe(ids[i], (i*7)%ds.Len(), float64(i%2)); err != nil {
			b.Fatal(err)
		}
	}
	cands := make([]assign.CandidateAssignment, 0, ds.Len())
	for tid := 0; tid < ds.Len(); tid++ {
		cands = append(cands, assign.CandidateAssignment{
			Task:    tid,
			Workers: assign.TopWorkers(est, tid, 3, ids),
		})
	}
	return &ablationFixture{ds: ds, g: g, basis: basis, est: est, ids: ids, cands: cands}
}

// BenchmarkAblationGreedyHeap measures the production heap-based greedy.
func BenchmarkAblationGreedyHeap(b *testing.B) {
	fx := newAblationFixture(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := assign.Greedy(fx.cands); len(got) == 0 {
			b.Fatal("empty scheme")
		}
	}
}

// BenchmarkAblationGreedyReference measures the paper's literal O(|T|^2)
// Algorithm 3 on the same candidates.
func BenchmarkAblationGreedyReference(b *testing.B) {
	fx := newAblationFixture(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := assign.GreedyReference(fx.cands); len(got) == 0 {
			b.Fatal("empty scheme")
		}
	}
}

// BenchmarkAblationPPRSparsePush measures the localized sparse solver used
// in production for one basis vector.
func BenchmarkAblationPPRSparsePush(b *testing.B) {
	fx := newAblationFixture(b, 10)
	o := ppr.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ppr.SparseSolve(fx.g, i%fx.g.N(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPPRDenseIteration measures the dense Eq.-(4) power
// iteration the sparse push replaces.
func BenchmarkAblationPPRDenseIteration(b *testing.B) {
	fx := newAblationFixture(b, 10)
	o := ppr.DefaultOptions()
	q := make([]float64, fx.g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[i%len(q)] = 1
		if _, _, err := ppr.DenseSolve(fx.g, q, o); err != nil {
			b.Fatal(err)
		}
		q[i%len(q)] = 0
	}
}

// BenchmarkAblationTopWorkersIndex measures the support+base index used by
// the framework.
func BenchmarkAblationTopWorkersIndex(b *testing.B) {
	for _, workers := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fx := newAblationFixture(b, workers)
			ix := assign.NewIndex(fx.est, fx.ids)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := ix.TopWorkers(i%fx.ds.Len(), 3, nil); len(got) != 3 {
					b.Fatal("bad top set")
				}
			}
		})
	}
}

// BenchmarkAblationTopWorkersScan measures the O(|W|) reference scan the
// index replaces.
func BenchmarkAblationTopWorkersScan(b *testing.B) {
	for _, workers := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fx := newAblationFixture(b, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := assign.TopWorkers(fx.est, i%fx.ds.Len(), 3, fx.ids); len(got) != 3 {
					b.Fatal("bad top set")
				}
			}
		})
	}
}

// BenchmarkAblationCombineLinearity measures the Lemma-3 linear combination
// against re-solving Eq. (4) from scratch for the same observed vector —
// the paper's core efficiency claim for online estimation.
func BenchmarkAblationCombineLinearity(b *testing.B) {
	fx := newAblationFixture(b, 10)
	q := map[int]float64{0: 1, 50: 0.4, 100: 0.9, 200: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := fx.basis.Combine(q); len(got) == 0 {
			b.Fatal("empty combine")
		}
	}
}

// BenchmarkAblationResolveFromScratch is the baseline for
// BenchmarkAblationCombineLinearity.
func BenchmarkAblationResolveFromScratch(b *testing.B) {
	fx := newAblationFixture(b, 10)
	o := ppr.DefaultOptions()
	q := make([]float64, fx.g.N())
	q[0], q[50], q[100], q[200] = 1, 0.4, 0.9, 0.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ppr.DenseSolve(fx.g, q, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyByAverage measures Algorithm 3's average-accuracy
// selection score (the paper's formulation).
func BenchmarkAblationGreedyByAverage(b *testing.B) {
	fx := newAblationFixture(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := assign.Greedy(fx.cands); len(got) == 0 {
			b.Fatal("empty scheme")
		}
	}
}

// BenchmarkAblationGreedyByProbability measures the Eq.-(1)-scored variant,
// which pays an O(k^2) Poisson-binomial evaluation per candidate.
func BenchmarkAblationGreedyByProbability(b *testing.B) {
	fx := newAblationFixture(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := assign.GreedyByProbability(fx.cands); len(got) == 0 {
			b.Fatal("empty scheme")
		}
	}
}
