// Quickstart walks through the iCrowd pipeline on the paper's Table-1
// entity-resolution microtasks: build the similarity graph of Figure 3,
// precompute the personalized-PageRank basis, estimate a worker's
// accuracies from a few observations (the running example of Section 3),
// and compute an assignment scheme (the Table-3 example of Section 4).
package main

import (
	"fmt"
	"log"

	"icrowd/internal/assign"
	"icrowd/internal/estimate"
	"icrowd/internal/ppr"
	"icrowd/internal/qualify"
	"icrowd/internal/simgraph"
	"icrowd/internal/task"
)

func main() {
	// 1. The twelve microtasks of Table 1.
	ds := task.ProductMatching()
	fmt.Printf("dataset: %s with %d microtasks over domains %v\n\n",
		ds.Name, ds.Len(), ds.Domains)

	// 2. The similarity graph of Figure 3: Jaccard over token sets,
	//    threshold 0.5.
	g, err := simgraph.Build(ds.Len(), simgraph.JaccardMetric(ds), 0.5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similarity graph: %d edges; sim(t2,t7) = %.3f (paper: 4/7)\n\n",
		g.NumEdges(), g.Sim(1, 6))

	// 3. Offline phase of Algorithm 1: precompute p_{t_i} for every task.
	basis, err := ppr.Precompute(g, ppr.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. The paper's running example: worker w answers t1 correctly and
	//    t2, t3 incorrectly. Estimate her accuracy on every other task.
	est := estimate.New(basis, estimate.DefaultLambda)
	est.EnsureWorker("w", 0.6)
	check(est.ObserveQualification("w", 0, true))  // t1 (iPhone) correct
	check(est.ObserveQualification("w", 1, false)) // t2 (iPod) wrong
	check(est.ObserveQualification("w", 2, false)) // t3 (iPad) wrong
	fmt.Println("estimated accuracies of w after {t1 OK, t2 X, t3 X}:")
	for i := 3; i < ds.Len(); i++ {
		fmt.Printf("  t%-2d (%-6s) p = %.3f\n", i+1, ds.Tasks[i].Domain, est.Accuracy("w", i))
	}
	fmt.Println("  -> iPhone tasks rise above the 0.6 base; iPod/iPad drop.")

	// 5. Qualification selection (Section 5): pick 3 influential tasks.
	qual, err := qualify.SelectGreedy(basis, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nInfQF qualification picks (Q=3): %v, influence %d of %d tasks\n",
		qual, qualify.Influence(basis, qual), ds.Len())

	// 6. The Table-3 greedy assignment example, verbatim.
	cands := []assign.CandidateAssignment{
		{Task: 4, Workers: []assign.Candidate{{Worker: "w5", Accuracy: 0.75}, {Worker: "w4", Accuracy: 0.7}, {Worker: "w1", Accuracy: 0.6}}},
		{Task: 11, Workers: []assign.Candidate{{Worker: "w5", Accuracy: 0.85}, {Worker: "w3", Accuracy: 0.8}}},
		{Task: 9, Workers: []assign.Candidate{{Worker: "w4", Accuracy: 0.85}, {Worker: "w2", Accuracy: 0.75}, {Worker: "w1", Accuracy: 0.7}}},
		{Task: 10, Workers: []assign.Candidate{{Worker: "w3", Accuracy: 0.7}, {Worker: "w1", Accuracy: 0.6}}},
	}
	scheme := assign.Greedy(cands)
	fmt.Println("\ngreedy assignment over the Table-3 candidates:")
	for _, a := range scheme {
		fmt.Printf("  t%d <- %v (sum accuracy %.2f)\n", a.Task, workersOf(a), a.SumAccuracy())
	}
	fmt.Printf("scheme value %.2f (paper picks t11 then t9)\n", assign.TotalValue(scheme))
}

func workersOf(a assign.CandidateAssignment) []string {
	out := make([]string, len(a.Workers))
	for i, c := range a.Workers {
		out[i] = c.Worker
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
