// Yahooqa reproduces the paper's first evaluation scenario in miniature:
// the YahooQA question-answer dataset (110 microtasks, six domains), a
// 25-worker crowd with domain-diverse accuracies, and a comparison of all
// four approaches of Figure 9 — RandomMV, RandomEM, AvgAccPV and iCrowd —
// on the same crowd and qualification set.
package main

import (
	"fmt"
	"log"
	"sort"

	"icrowd/internal/baseline"
	"icrowd/internal/core"
	"icrowd/internal/experiments"
	"icrowd/internal/qualify"
	"icrowd/internal/sim"
)

func main() {
	const seed = 3
	ds, pool, err := experiments.LoadDataset(experiments.DatasetYahooQA, seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YahooQA: %d question-answer microtasks, %d simulated workers\n",
		ds.Len(), len(pool))
	fmt.Println("domains:")
	doms := append([]string(nil), ds.Domains...)
	sort.Strings(doms)
	for _, d := range doms {
		fmt.Printf("  %s = %s (%d tasks)\n", d, domainName(d), len(ds.ByDomain(d)))
	}

	bc := core.DefaultBasisConfig()
	bc.Seed = seed
	basis, err := core.BuildBasis(ds, bc)
	if err != nil {
		log.Fatal(err)
	}
	qual, err := qualify.Select(qualify.InfQF, basis, 10, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nshared qualification microtasks (InfQF, Q=10): %v\n\n", qual)
	fmt.Printf("%-10s %-9s %s\n", "approach", "overall", "per-domain accuracy")

	type mk func() (core.Strategy, error)
	approaches := []struct {
		name  string
		build mk
	}{
		{"RandomMV", func() (core.Strategy, error) { return baseline.NewRandomMV(ds, 3, qual, seed) }},
		{"RandomEM", func() (core.Strategy, error) { return baseline.NewRandomEM(ds, 3, qual, seed) }},
		{"AvgAccPV", func() (core.Strategy, error) { return baseline.NewAvgAccPV(ds, 3, qual, 0, seed) }},
		{"iCrowd", func() (core.Strategy, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			return core.New(ds, basis, cfg, core.WithQualification(qual))
		}},
	}
	for _, a := range approaches {
		st, err := a.build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(st, ds, append([]sim.Profile(nil), pool...),
			sim.RunOptions{Seed: seed + 7, ExcludeTasks: qual})
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-10s %-9.3f", a.name, res.Accuracy)
		for _, d := range doms {
			line += fmt.Sprintf(" %s=%.2f", d, res.PerDomain[d])
		}
		fmt.Println(line)
	}
}

func domainName(code string) string {
	names := map[string]string{
		"FF": "2006 FIFA World Cup",
		"BA": "Books & Authors",
		"DF": "Diet & Fitness",
		"HS": "Home Schooling",
		"HT": "Hunting",
		"PH": "Philosophy",
	}
	return names[code]
}
