// Entityresolution runs the full adaptive framework end to end on a
// crowdsourced entity-resolution workload (the paper's motivating use case,
// Section 1): product-matching microtasks, a simulated crowd with domain
// specialists, and the complete warm-up / estimate / assign / aggregate
// loop. It then contrasts iCrowd against random assignment on the same
// crowd.
package main

import (
	"fmt"
	"log"

	"icrowd/internal/baseline"
	"icrowd/internal/core"
	"icrowd/internal/sim"
	"icrowd/internal/task"
)

func main() {
	ds := task.ProductMatching()
	fmt.Printf("entity resolution over %d product-matching microtasks\n", ds.Len())

	// A crowd with one specialist per product family plus generalists —
	// exactly the accuracy-diversity situation of Section 1 ("a worker
	// acquainted with Samsung ... may not be good at tasks about iPad").
	pool := []sim.Profile{
		{ID: "phone-expert", DomainAcc: map[string]float64{"iPhone": 0.95, "iPod": 0.55, "iPad": 0.55}},
		{ID: "pod-expert", DomainAcc: map[string]float64{"iPhone": 0.55, "iPod": 0.95, "iPad": 0.55}},
		{ID: "pad-expert", DomainAcc: map[string]float64{"iPhone": 0.55, "iPod": 0.55, "iPad": 0.95}},
		{ID: "generalist-1", DomainAcc: map[string]float64{"iPhone": 0.75, "iPod": 0.75, "iPad": 0.75}},
		{ID: "generalist-2", DomainAcc: map[string]float64{"iPhone": 0.75, "iPod": 0.75, "iPad": 0.75}},
		{ID: "spammer", DomainAcc: map[string]float64{"iPhone": 0.5, "iPod": 0.5, "iPad": 0.5}},
	}

	// iCrowd: Figure-3 graph (Jaccard >= 0.5), 3 qualification microtasks.
	bc := core.DefaultBasisConfig()
	bc.Threshold = 0.5
	basis, err := core.BuildBasis(ds, bc)
	if err != nil {
		log.Fatal(err)
	}

	// Only nine microtasks remain after qualification, so a single run is
	// dominated by vote noise: average both approaches over many seeds.
	const runs = 20
	var icSum, mvSum float64
	var lastIC *core.ICrowd
	for seed := int64(1); seed <= runs; seed++ {
		cfg := core.DefaultConfig()
		cfg.Q = 3
		ic, err := core.New(ds, basis, cfg)
		if err != nil {
			log.Fatal(err)
		}
		icRes, err := sim.Run(ic, ds, clone(pool), sim.RunOptions{Seed: seed, ExcludeTasks: ic.QualificationTasks()})
		if err != nil {
			log.Fatal(err)
		}
		icSum += icRes.Accuracy
		lastIC = ic

		mv, err := baseline.NewRandomMV(ds, 3, ic.QualificationTasks(), seed)
		if err != nil {
			log.Fatal(err)
		}
		mvRes, err := sim.Run(mv, ds, clone(pool), sim.RunOptions{Seed: seed, ExcludeTasks: ic.QualificationTasks()})
		if err != nil {
			log.Fatal(err)
		}
		mvSum += mvRes.Accuracy
	}

	fmt.Printf("\naccuracy over %d runs:\n", runs)
	fmt.Printf("  %-10s %.3f\n", "RandomMV", mvSum/runs)
	fmt.Printf("  %-10s %.3f\n", "iCrowd", icSum/runs)

	// Show how the last iCrowd run resolved the true matches of Table 1.
	fmt.Println("\niCrowd's verdicts on the true duplicate pairs:")
	results := lastIC.Results()
	for _, id := range []int{5, 10, 11} {
		fmt.Printf("  t%-2d %q -> %s (truth %s)\n",
			id+1, ds.Tasks[id].Text, results[id], ds.Tasks[id].Truth)
	}
}

func clone(pool []sim.Profile) []sim.Profile {
	return append([]sim.Profile(nil), pool...)
}
