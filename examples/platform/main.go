// Platform demonstrates the Appendix-A deployment end to end, entirely in
// one process: the iCrowd web server listens on a local port (this is what
// AMT's ExternalQuestion HITs would call), and a pool of simulated worker
// agents concurrently request microtasks, answer them according to their
// latent domain accuracies, and submit — until every microtask reaches
// consensus.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"icrowd/internal/core"
	"icrowd/internal/experiments"
	"icrowd/internal/platform"
)

func main() {
	const seed = 5
	ds, pool, err := experiments.LoadDataset(experiments.DatasetItemCompare, seed, 12)
	if err != nil {
		log.Fatal(err)
	}

	bc := core.DefaultBasisConfig()
	bc.Seed = seed
	basis, err := core.BuildBasis(ds, bc)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	ic, err := core.New(ds, basis, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The iCrowd web server (Figure 11). httptest picks a free local port;
	// in production this would be your public endpoint.
	srv := httptest.NewServer(platform.NewServer(ic, ds).Handler())
	defer srv.Close()
	fmt.Printf("iCrowd server listening on %s\n", srv.URL)
	fmt.Printf("dataset %s: %d microtasks, k=%d, Q=%d qualification tasks\n\n",
		ds.Name, ds.Len(), cfg.K, cfg.Q)

	// 12 concurrent worker agents hammer the server, exactly like AMT
	// workers accepting HITs.
	if err := platform.RunWorkers(context.Background(), srv.URL, ds, pool, 600, seed); err != nil {
		log.Fatal(err)
	}

	client := &platform.Client{BaseURL: srv.URL, HTTPClient: http.DefaultClient}
	status, err := client.Status(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job status: %d/%d tasks answered, done=%v\n",
		status.Completed, status.Total, status.Done)

	results, err := client.Results(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	correct, scored := 0, 0
	qual := map[int]bool{}
	for _, q := range ic.QualificationTasks() {
		qual[q] = true
	}
	for id, tk := range ds.Tasks {
		if qual[id] {
			continue
		}
		scored++
		if results[id] == tk.Truth.String() {
			correct++
		}
	}
	fmt.Printf("crowd accuracy over %d scored microtasks: %.3f\n",
		scored, float64(correct)/float64(scored))
}
