// Catalog deduplicates a product catalog with the crowd: the end-to-end
// entity-resolution application the paper motivates (Section 1). Records
// are blocked into candidate pairs, each pair becomes a YES/NO microtask,
// iCrowd resolves the microtasks over a simulated crowd of brand
// specialists, and the transitive closure of YES verdicts yields clusters.
package main

import (
	"fmt"
	"log"

	"icrowd/internal/core"
	"icrowd/internal/er"
	"icrowd/internal/sim"
)

func main() {
	records := []er.Record{
		{ID: "p00", Text: "apple iphone 4 smartphone 32gb black", Entity: "iphone4"},
		{ID: "p01", Text: "iphone 4 32gb black smartphone", Entity: "iphone4"},
		{ID: "p02", Text: "apple iphone four 32 gb", Entity: "iphone4"},
		{ID: "p03", Text: "apple iphone 4 leather case", Entity: "iphone4-case"},
		{ID: "p04", Text: "iphone 4 case leather black", Entity: "iphone4-case"},
		{ID: "p05", Text: "samsung galaxy note 4 phablet", Entity: "note4"},
		{ID: "p06", Text: "galaxy note four samsung phablet", Entity: "note4"},
		{ID: "p07", Text: "samsung galaxy s4 smartphone", Entity: "s4"},
		{ID: "p08", Text: "galaxy s4 samsung smartphone 16gb", Entity: "s4"},
		{ID: "p09", Text: "apple ipad 3 tablet wifi 32gb", Entity: "ipad3"},
		{ID: "p10", Text: "new ipad tablet wifi 32gb", Entity: "ipad3"},
		{ID: "p11", Text: "apple ipad retina display tablet", Entity: "ipad4"},
		{ID: "p12", Text: "ipad 4 retina tablet apple", Entity: "ipad4"},
		{ID: "p13", Text: "ipod touch 32gb music player", Entity: "ipodtouch"},
		{ID: "p14", Text: "apple ipod touch music 32gb", Entity: "ipodtouch"},
		{ID: "p15", Text: "ipod nano 8gb music player", Entity: "ipodnano"},
	}

	job, err := er.NewJob(records, er.BlockingConfig{MinSim: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	ds := job.Dataset()
	fmt.Printf("catalog: %d records -> %d candidate pairs after blocking\n",
		len(records), ds.Len())

	bc := core.DefaultBasisConfig()
	bc.Threshold = 0.3
	basis, err := core.BuildBasis(ds, bc)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Q = 3
	cfg.WarmupThreshold = 0.5
	ic, err := core.New(ds, basis, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Brand specialists: each is sharp on one brand's comparisons.
	pool := []sim.Profile{
		brand("apple-expert", []string{"iphone", "ipad", "ipod", "apple"}, 0.95),
		brand("samsung-expert", []string{"samsung", "galaxy", "note"}, 0.95),
		brand("generalist-1", nil, 0.85),
		brand("generalist-2", nil, 0.85),
		brand("generalist-3", nil, 0.8),
	}
	res, err := sim.Run(ic, ds, pool, sim.RunOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crowd run: completed=%v, %d answers collected\n\n",
		res.Completed, res.TotalAssignments())

	resolution := job.Resolve(ic)
	fmt.Println("clusters:")
	for _, c := range resolution.Clusters {
		if len(c) == 1 {
			continue
		}
		fmt.Print("  {")
		for i, r := range c {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(records[r].ID)
		}
		fmt.Println("}")
	}
	fmt.Printf("\nquality: %s\n", job.Evaluate(resolution))
}

// brand builds a worker profile: strong on domains containing one of the
// given anchor tokens, base accuracy elsewhere.
func brand(id string, anchors []string, strong float64) sim.Profile {
	p := sim.Profile{ID: id, DomainAcc: map[string]float64{}}
	// Domain labels in er jobs are shared anchor tokens; map them directly.
	base := 0.6
	if anchors == nil {
		base = strong
	}
	for _, a := range []string{"apple", "iphone", "ipad", "ipod", "samsung", "galaxy", "note", "new", "tablet", "smartphone", "music", "case", "4", "32gb"} {
		acc := base
		for _, anchor := range anchors {
			if a == anchor {
				acc = strong
			}
		}
		p.DomainAcc[a] = acc
	}
	return p
}
