// Poi demonstrates the geometric similarity case of Section 3.3: microtasks
// that verify place names of points-of-interest, whose similarity is the
// normalized Euclidean distance between their coordinates rather than any
// text overlap. The similarity graph clusters POIs by neighborhood, and a
// worker who knows one part of town well gets routed the tasks there.
package main

import (
	"fmt"
	"log"

	"icrowd/internal/core"
	"icrowd/internal/ppr"
	"icrowd/internal/sim"
	"icrowd/internal/simgraph"
	"icrowd/internal/task"
)

func main() {
	// 80 place-verification microtasks around four city areas.
	ds := task.GeneratePOI(20, 7)
	fmt.Printf("%s: %d microtasks around areas %v\n", ds.Name, ds.Len(), ds.Domains)

	metric, err := simgraph.EuclideanMetric(ds)
	if err != nil {
		log.Fatal(err)
	}
	g, err := simgraph.Build(ds.Len(), metric, 0.6, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similarity graph (Euclidean >= 0.6): %d edges, %d components\n",
		g.NumEdges(), len(g.Components()))

	basis, err := ppr.Precompute(g, ppr.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Q = 6
	ic, err := core.New(ds, basis, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Locals: each knows one area very well, the rest hardly at all.
	pool := []sim.Profile{
		{ID: "downtown-local", DomainAcc: area(ds, "Downtown", 0.95, 0.55)},
		{ID: "harbor-local", DomainAcc: area(ds, "Harbor", 0.95, 0.55)},
		{ID: "uptown-local", DomainAcc: area(ds, "Uptown", 0.95, 0.55)},
		{ID: "airport-local", DomainAcc: area(ds, "Airport", 0.95, 0.55)},
		{ID: "cab-driver", DomainAcc: area(ds, "", 0.75, 0.75)},
		{ID: "tourist", DomainAcc: area(ds, "", 0.55, 0.55)},
	}
	res, err := sim.Run(ic, ds, pool, sim.RunOptions{Seed: 5, ExcludeTasks: ic.QualificationTasks()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted=%v, overall accuracy %.3f\n", res.Completed, res.Accuracy)
	for _, area := range ds.Domains {
		fmt.Printf("  %-9s %.3f\n", area, res.PerDomain[area])
	}

	// Where did each local actually work?
	fmt.Println("\nassignments per worker and area:")
	for _, w := range res.TopWorkers() {
		fmt.Printf("  %-15s", w)
		for _, a := range ds.Domains {
			fmt.Printf(" %s=%-3d", a[:2], res.WorkerDomain[w][a].Total)
		}
		fmt.Println()
	}
}

// area builds a per-domain accuracy map: home accuracy in the named area,
// away accuracy elsewhere (or uniform when home is empty).
func area(ds *task.Dataset, home string, homeAcc, awayAcc float64) map[string]float64 {
	m := map[string]float64{}
	for _, d := range ds.Domains {
		if d == home {
			m[d] = homeAcc
		} else {
			m[d] = awayAcc
		}
	}
	return m
}
